//! Export of extraction results to interchange formats (JSON reports, CSV tables).
//!
//! The end goal of structure extraction is to hand the structured data to downstream tools
//! (§1: "analyzed in conjunction with other datasets").  This module provides the two
//! formats those tools most commonly ingest:
//!
//! * a machine-readable **JSON report** ([`ExtractionReport`]) summarizing the discovered
//!   structure templates, per-column types (both the MDL data types and the semantic types of
//!   [`crate::semtype`]), coverage, and step timings;
//! * **CSV** serialization of the relational output ([`table_to_csv`], [`write_table_csv`],
//!   [`all_tables_csv`]), with RFC-4180-style quoting.

use crate::fieldtype::FieldType;
use crate::json::{JsonError, JsonValue};
use crate::pipeline::{ExtractionResult, PipelineStats};
use crate::relational::Table;
use crate::semtype::{
    annotate_table, ColumnAnnotation, CompositeColumn, SemanticType, TableAnnotation,
};
use std::io::{self, Write};

/// Serializable summary of one discovered record type.
#[derive(Clone, Debug, PartialEq)]
pub struct StructureReport {
    /// Human-readable structure template (e.g. `[F:F] F\n`).
    pub template: String,
    /// Number of field columns in the denormalized output.
    pub field_count: usize,
    /// Number of records extracted.
    pub record_count: usize,
    /// Fraction of the dataset's bytes covered by records of this type.
    pub coverage: f64,
    /// Regularity score of the template (lower is better).
    pub score: f64,
    /// Per-column MDL data types (`enum` / `int` / `real` / `string`).
    pub column_types: Vec<String>,
    /// Per-column and composite semantic annotations.
    pub semantics: TableAnnotation,
    /// Names of the normalized tables (root first).
    pub tables: Vec<String>,
}

/// Serializable summary of the pipeline statistics (subset of [`PipelineStats`]).
#[derive(Clone, Debug, PartialEq)]
pub struct StatsReport {
    /// Candidates emitted by the generation step(s).
    pub candidates_generated: usize,
    /// Candidates surviving the pruning step(s).
    pub candidates_pruned: usize,
    /// Character sets enumerated.
    pub charsets_enumerated: usize,
    /// Candidate records examined.
    pub records_examined: usize,
    /// Bytes of sampled data used by the search.
    pub sample_bytes: usize,
    /// Pipeline iterations (record types attempted).
    pub iterations: usize,
    /// Per-step wall-clock seconds: sampling, generation, pruning, evaluation, extraction.
    pub step_seconds: [f64; 5],
    /// Extraction backend the final pass ran on (`span` or `legacy`).
    pub extraction_backend: String,
    /// Worker threads the final extraction pass was sharded across.
    pub extraction_threads: usize,
    /// Evaluation backend the refinement loop ran on (`span` or `legacy`).
    pub evaluation_backend: String,
    /// Worker threads the per-candidate evaluation loop was sharded across.
    pub evaluation_threads: usize,
    /// Template evaluations performed during refinement (including memo hits).
    pub evaluation_count: usize,
    /// Evaluations answered by the template-score memo without re-parsing.
    pub evaluation_memo_hits: usize,
    /// Seconds the evaluation phase spent parsing candidates against the sample.
    pub evaluation_parse_seconds: f64,
    /// Seconds the evaluation phase spent computing regularity scores.
    pub evaluation_score_seconds: f64,
}

impl StatsReport {
    fn from_stats(stats: &PipelineStats) -> Self {
        let t = &stats.timings;
        StatsReport {
            candidates_generated: stats.candidates_generated,
            candidates_pruned: stats.candidates_pruned,
            charsets_enumerated: stats.charsets_enumerated,
            records_examined: stats.records_examined,
            sample_bytes: stats.sample_bytes,
            iterations: stats.iterations,
            step_seconds: [
                t.sampling.as_secs_f64(),
                t.generation.as_secs_f64(),
                t.pruning.as_secs_f64(),
                t.evaluation.as_secs_f64(),
                t.extraction.as_secs_f64(),
            ],
            extraction_backend: stats.extraction_backend.clone(),
            extraction_threads: stats.extraction_threads,
            evaluation_backend: stats.evaluation_backend.clone(),
            evaluation_threads: stats.evaluation_threads,
            evaluation_count: stats.evaluation_metrics.evaluations,
            evaluation_memo_hits: stats.evaluation_metrics.memo_hits,
            evaluation_parse_seconds: stats.evaluation_metrics.parse_seconds,
            evaluation_score_seconds: stats.evaluation_metrics.score_seconds,
        }
    }
}

/// A complete, serializable extraction report.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtractionReport {
    /// Size of the input dataset in bytes.
    pub dataset_bytes: usize,
    /// Number of lines in the input dataset.
    pub dataset_lines: usize,
    /// Total records extracted across all record types.
    pub record_count: usize,
    /// Number of lines left as noise.
    pub noise_lines: usize,
    /// Fraction of the dataset's bytes left unexplained.
    pub noise_fraction: f64,
    /// One report per discovered record type.
    pub structures: Vec<StructureReport>,
    /// Search statistics.
    pub stats: StatsReport,
}

impl ExtractionReport {
    /// Builds a report from the raw input text and the extraction result.
    pub fn new(text: &str, result: &ExtractionResult) -> Self {
        let structures = result
            .structures
            .iter()
            .map(|s| StructureReport {
                template: s.template.to_string(),
                field_count: s.template.field_count(),
                record_count: s.records.len(),
                coverage: s.coverage,
                score: s.score,
                column_types: s
                    .column_types
                    .iter()
                    .map(FieldType::name)
                    .map(str::to_string)
                    .collect(),
                semantics: annotate_table(&s.denormalized),
                tables: s.relational.tables.iter().map(|t| t.name.clone()).collect(),
            })
            .collect();
        ExtractionReport {
            dataset_bytes: text.len(),
            dataset_lines: text.lines().count(),
            record_count: result.record_count(),
            noise_lines: result.noise_lines.len(),
            noise_fraction: result.noise_fraction,
            structures,
            stats: StatsReport::from_stats(&result.stats),
        }
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty()
    }

    /// Parses a report back from JSON.
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        Self::from_json_value(&JsonValue::parse(json)?)
    }

    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("dataset_bytes".into(), num(self.dataset_bytes)),
            ("dataset_lines".into(), num(self.dataset_lines)),
            ("record_count".into(), num(self.record_count)),
            ("noise_lines".into(), num(self.noise_lines)),
            (
                "noise_fraction".into(),
                JsonValue::Number(self.noise_fraction),
            ),
            (
                "structures".into(),
                JsonValue::Array(self.structures.iter().map(structure_to_json).collect()),
            ),
            ("stats".into(), stats_to_json(&self.stats)),
        ])
    }

    fn from_json_value(v: &JsonValue) -> Result<Self, JsonError> {
        Ok(ExtractionReport {
            dataset_bytes: v.require("dataset_bytes")?.as_usize()?,
            dataset_lines: v.require("dataset_lines")?.as_usize()?,
            record_count: v.require("record_count")?.as_usize()?,
            noise_lines: v.require("noise_lines")?.as_usize()?,
            noise_fraction: v.require("noise_fraction")?.as_f64()?,
            structures: v
                .require("structures")?
                .as_array()?
                .iter()
                .map(structure_from_json)
                .collect::<Result<_, _>>()?,
            stats: stats_from_json(v.require("stats")?)?,
        })
    }
}

fn num(n: usize) -> JsonValue {
    JsonValue::Number(n as f64)
}

fn strings(items: &[String]) -> JsonValue {
    JsonValue::Array(items.iter().map(|s| JsonValue::String(s.clone())).collect())
}

fn string_vec(v: &JsonValue) -> Result<Vec<String>, JsonError> {
    v.as_array()?
        .iter()
        .map(|item| item.as_str().map(str::to_string))
        .collect()
}

fn structure_to_json(s: &StructureReport) -> JsonValue {
    JsonValue::Object(vec![
        ("template".into(), JsonValue::String(s.template.clone())),
        ("field_count".into(), num(s.field_count)),
        ("record_count".into(), num(s.record_count)),
        ("coverage".into(), JsonValue::Number(s.coverage)),
        ("score".into(), JsonValue::Number(s.score)),
        ("column_types".into(), strings(&s.column_types)),
        ("semantics".into(), semantics_to_json(&s.semantics)),
        ("tables".into(), strings(&s.tables)),
    ])
}

fn structure_from_json(v: &JsonValue) -> Result<StructureReport, JsonError> {
    Ok(StructureReport {
        template: v.require("template")?.as_str()?.to_string(),
        field_count: v.require("field_count")?.as_usize()?,
        record_count: v.require("record_count")?.as_usize()?,
        coverage: v.require("coverage")?.as_f64()?,
        score: v.require("score")?.as_f64()?,
        column_types: string_vec(v.require("column_types")?)?,
        semantics: semantics_from_json(v.require("semantics")?)?,
        tables: string_vec(v.require("tables")?)?,
    })
}

fn semantics_to_json(annotation: &TableAnnotation) -> JsonValue {
    let columns = annotation
        .columns
        .iter()
        .map(|c| {
            JsonValue::Object(vec![
                ("column".into(), num(c.column)),
                (
                    "semantic".into(),
                    JsonValue::String(c.semantic.name().into()),
                ),
                ("confidence".into(), JsonValue::Number(c.confidence)),
            ])
        })
        .collect();
    let composites = annotation
        .composites
        .iter()
        .map(|c| {
            JsonValue::Object(vec![
                ("first_column".into(), num(c.first_column)),
                ("width".into(), num(c.width)),
                (
                    "delimiter".into(),
                    JsonValue::String(c.delimiter.to_string()),
                ),
                (
                    "semantic".into(),
                    JsonValue::String(c.semantic.name().into()),
                ),
            ])
        })
        .collect();
    JsonValue::Object(vec![
        ("columns".into(), JsonValue::Array(columns)),
        ("composites".into(), JsonValue::Array(composites)),
    ])
}

fn semantic_from_json(v: &JsonValue) -> Result<SemanticType, JsonError> {
    let name = v.as_str()?;
    SemanticType::from_name(name)
        .ok_or_else(|| JsonError::shape(format!("unknown semantic type {name:?}")))
}

fn semantics_from_json(v: &JsonValue) -> Result<TableAnnotation, JsonError> {
    let columns = v
        .require("columns")?
        .as_array()?
        .iter()
        .map(|c| {
            Ok(ColumnAnnotation {
                column: c.require("column")?.as_usize()?,
                semantic: semantic_from_json(c.require("semantic")?)?,
                confidence: c.require("confidence")?.as_f64()?,
            })
        })
        .collect::<Result<_, JsonError>>()?;
    let composites = v
        .require("composites")?
        .as_array()?
        .iter()
        .map(|c| {
            let delimiter = c.require("delimiter")?.as_str()?;
            Ok(CompositeColumn {
                first_column: c.require("first_column")?.as_usize()?,
                width: c.require("width")?.as_usize()?,
                delimiter: delimiter
                    .chars()
                    .next()
                    .ok_or_else(|| JsonError::shape("empty composite delimiter"))?,
                semantic: semantic_from_json(c.require("semantic")?)?,
            })
        })
        .collect::<Result<_, JsonError>>()?;
    Ok(TableAnnotation {
        columns,
        composites,
    })
}

fn stats_to_json(stats: &StatsReport) -> JsonValue {
    JsonValue::Object(vec![
        (
            "candidates_generated".into(),
            num(stats.candidates_generated),
        ),
        ("candidates_pruned".into(), num(stats.candidates_pruned)),
        ("charsets_enumerated".into(), num(stats.charsets_enumerated)),
        ("records_examined".into(), num(stats.records_examined)),
        ("sample_bytes".into(), num(stats.sample_bytes)),
        ("iterations".into(), num(stats.iterations)),
        (
            "extraction_backend".into(),
            JsonValue::String(stats.extraction_backend.clone()),
        ),
        ("extraction_threads".into(), num(stats.extraction_threads)),
        (
            "evaluation_backend".into(),
            JsonValue::String(stats.evaluation_backend.clone()),
        ),
        ("evaluation_threads".into(), num(stats.evaluation_threads)),
        ("evaluation_count".into(), num(stats.evaluation_count)),
        (
            "evaluation_memo_hits".into(),
            num(stats.evaluation_memo_hits),
        ),
        (
            "evaluation_parse_seconds".into(),
            JsonValue::Number(stats.evaluation_parse_seconds),
        ),
        (
            "evaluation_score_seconds".into(),
            JsonValue::Number(stats.evaluation_score_seconds),
        ),
        (
            "step_seconds".into(),
            JsonValue::Array(
                stats
                    .step_seconds
                    .iter()
                    .map(|s| JsonValue::Number(*s))
                    .collect(),
            ),
        ),
    ])
}

fn stats_from_json(v: &JsonValue) -> Result<StatsReport, JsonError> {
    let seconds = v.require("step_seconds")?.as_array()?;
    if seconds.len() != 5 {
        return Err(JsonError::shape("step_seconds must have 5 entries"));
    }
    let mut step_seconds = [0.0f64; 5];
    for (slot, value) in step_seconds.iter_mut().zip(seconds) {
        *slot = value.as_f64()?;
    }
    Ok(StatsReport {
        candidates_generated: v.require("candidates_generated")?.as_usize()?,
        candidates_pruned: v.require("candidates_pruned")?.as_usize()?,
        charsets_enumerated: v.require("charsets_enumerated")?.as_usize()?,
        records_examined: v.require("records_examined")?.as_usize()?,
        sample_bytes: v.require("sample_bytes")?.as_usize()?,
        iterations: v.require("iterations")?.as_usize()?,
        step_seconds,
        // Reports written before the span extraction engine lack these two fields.
        extraction_backend: match v.get("extraction_backend") {
            Some(b) => b.as_str()?.to_string(),
            None => String::new(),
        },
        extraction_threads: match v.get("extraction_threads") {
            Some(t) => t.as_usize()?,
            None => 0,
        },
        // Reports written before the span evaluation engine lack the evaluation fields.
        evaluation_backend: match v.get("evaluation_backend") {
            Some(b) => b.as_str()?.to_string(),
            None => String::new(),
        },
        evaluation_threads: match v.get("evaluation_threads") {
            Some(t) => t.as_usize()?,
            None => 0,
        },
        evaluation_count: match v.get("evaluation_count") {
            Some(t) => t.as_usize()?,
            None => 0,
        },
        evaluation_memo_hits: match v.get("evaluation_memo_hits") {
            Some(t) => t.as_usize()?,
            None => 0,
        },
        evaluation_parse_seconds: match v.get("evaluation_parse_seconds") {
            Some(t) => t.as_f64()?,
            None => 0.0,
        },
        evaluation_score_seconds: match v.get("evaluation_score_seconds") {
            Some(t) => t.as_f64()?,
            None => 0.0,
        },
    })
}

/// Quotes one CSV cell per RFC 4180: cells containing commas, quotes, or newlines are wrapped
/// in double quotes with inner quotes doubled.
pub fn csv_quote(cell: &str) -> String {
    let mut out = String::new();
    push_csv_cell(&mut out, cell);
    out
}

/// Appends one RFC-4180-quoted cell to `out` without intermediate allocation — this is the
/// point where span-backed table cells finally become owned bytes.
fn push_csv_cell(out: &mut String, cell: &str) {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') || cell.contains('\r') {
        out.reserve(cell.len() + 2);
        out.push('"');
        for c in cell.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(cell);
    }
}

/// Serializes one relational table as CSV text (header row first).  Cell values resolve
/// straight from the table's shared source buffer into the output — the only `String`
/// conversion in the relational path happens here, at the serialization boundary.
pub fn table_to_csv(table: &Table) -> String {
    let mut out = String::new();
    push_csv_row(&mut out, table.columns.iter().map(String::as_str));
    for r in 0..table.row_count() {
        push_csv_row(&mut out, table.row(r));
    }
    out
}

fn push_csv_row<'a>(out: &mut String, cells: impl Iterator<Item = &'a str>) {
    for (i, c) in cells.enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_csv_cell(out, c);
    }
    out.push('\n');
}

/// Writes one table as CSV to any [`Write`] sink (buffer the sink for files / sockets).
pub fn write_table_csv<W: Write>(table: &Table, mut sink: W) -> io::Result<()> {
    sink.write_all(table_to_csv(table).as_bytes())
}

/// Serializes every normalized table of every record type as `(table name, CSV text)` pairs,
/// in discovery order with the root table of each type first.
pub fn all_tables_csv(result: &ExtractionResult) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for s in &result.structures {
        for t in &s.relational.tables {
            out.push((t.name.clone(), table_to_csv(t)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Datamaran;

    fn sample_log() -> String {
        let mut s = String::new();
        for i in 0..80 {
            s.push_str(&format!(
                "[{:02}:{:02}] 10.0.{}.{} GET /p{}\n",
                i % 24,
                i % 60,
                i % 8,
                (i * 3) % 250,
                i % 7
            ));
        }
        s
    }

    #[test]
    fn report_summarizes_extraction() {
        let text = sample_log();
        let result = Datamaran::with_defaults().extract(&text).unwrap();
        let report = ExtractionReport::new(&text, &result);
        assert_eq!(report.dataset_bytes, text.len());
        assert_eq!(report.record_count, 80);
        assert_eq!(report.structures.len(), 1);
        let s = &report.structures[0];
        assert!(s.field_count >= 6);
        assert_eq!(s.column_types.len(), s.field_count);
        assert_eq!(s.semantics.columns.len(), s.field_count);
        assert!(!s.tables.is_empty());
        assert!(report.stats.step_seconds.iter().all(|x| *x >= 0.0));
    }

    #[test]
    fn report_json_round_trips() {
        let text = sample_log();
        let result = Datamaran::with_defaults().extract(&text).unwrap();
        let report = ExtractionReport::new(&text, &result);
        let json = report.to_json();
        assert!(json.contains("\"template\""));
        let back = ExtractionReport::from_json(&json).unwrap();
        // Compare the structural content; exact float equality is not what the format
        // guarantees (timings are environment-dependent anyway).
        assert_eq!(back.dataset_bytes, report.dataset_bytes);
        assert_eq!(back.record_count, report.record_count);
        assert_eq!(back.noise_lines, report.noise_lines);
        assert_eq!(back.structures.len(), report.structures.len());
        for (a, b) in back.structures.iter().zip(&report.structures) {
            assert_eq!(a.template, b.template);
            assert_eq!(a.field_count, b.field_count);
            assert_eq!(a.record_count, b.record_count);
            assert_eq!(a.column_types, b.column_types);
            assert_eq!(a.tables, b.tables);
        }
        assert_eq!(back.stats.iterations, report.stats.iterations);
        assert_eq!(back.stats.evaluation_backend, "span");
        assert_eq!(back.stats.evaluation_count, report.stats.evaluation_count);
        assert_eq!(
            back.stats.evaluation_memo_hits,
            report.stats.evaluation_memo_hits
        );
        assert!(back.stats.evaluation_parse_seconds >= 0.0);
        assert!(back.stats.evaluation_score_seconds >= 0.0);
    }

    #[test]
    fn csv_quoting_handles_special_characters() {
        assert_eq!(csv_quote("plain"), "plain");
        assert_eq!(csv_quote("a,b"), "\"a,b\"");
        assert_eq!(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_quote("two\nlines"), "\"two\nlines\"");
        assert_eq!(csv_quote(""), "");
    }

    #[test]
    fn table_to_csv_emits_header_and_rows() {
        let t = Table::from_strings(
            "t",
            vec!["id".into(), "msg".into()],
            vec![
                vec!["0".into(), "hello".into()],
                vec!["1".into(), "a,b".into()],
            ],
        );
        let csv = table_to_csv(&t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["id,msg", "0,hello", "1,\"a,b\""]);
    }

    #[test]
    fn span_backed_cells_serialize_identically_to_owned_cells() {
        use crate::relational::Cell;
        use std::sync::Arc;
        let source: Arc<str> = Arc::from("alpha,beta\n");
        let mut spans = Table::new("t", vec!["a".into(), "b".into()], Arc::clone(&source));
        spans.push_row(vec![
            Cell::Span { start: 0, end: 5 },
            Cell::Span { start: 6, end: 10 },
        ]);
        let owned = Table::from_strings(
            "t",
            vec!["a".into(), "b".into()],
            vec![vec!["alpha".into(), "beta".into()]],
        );
        assert_eq!(table_to_csv(&spans), table_to_csv(&owned));
    }

    #[test]
    fn write_table_csv_writes_to_sink() {
        let t = Table::from_strings("t", vec!["x".into()], vec![vec!["1".into()]]);
        let mut buf = Vec::new();
        write_table_csv(&t, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "x\n1\n");
    }

    #[test]
    fn all_tables_csv_covers_every_table() {
        let text = sample_log();
        let result = Datamaran::with_defaults().extract(&text).unwrap();
        let tables = all_tables_csv(&result);
        let total: usize = result
            .structures
            .iter()
            .map(|s| s.relational.tables.len())
            .sum();
        assert_eq!(tables.len(), total);
        assert!(tables[0].1.lines().count() > 80);
    }
}
