//! Export of extraction results to interchange formats (JSON reports, CSV tables, and
//! push-based streaming sinks).
//!
//! The end goal of structure extraction is to hand the structured data to downstream tools
//! (§1: "analyzed in conjunction with other datasets").  This module provides the formats
//! those tools most commonly ingest:
//!
//! * a machine-readable **JSON report** ([`ExtractionReport`]) summarizing the discovered
//!   structure templates, per-column types (both the MDL data types and the semantic types of
//!   [`crate::semtype`]), coverage, and step timings;
//! * **CSV** serialization of the relational output ([`table_to_csv`], [`write_table_csv`],
//!   [`all_tables_csv`]), with RFC-4180-style quoting;
//! * **JSON Lines** serialization of the per-record values ([`all_records_jsonl`]);
//! * push-based **streaming sinks** ([`RecordSink`], [`CsvSink`], [`JsonLinesSink`],
//!   [`CountingSink`], [`Tee`]) fed by
//!   [`StreamSession`](crate::streaming::StreamSession): records are serialized
//!   straight from the chunk window's text without ever materializing a [`Table`], and the
//!   emitted bytes are **identical** to the materialized serializers above (enforced by
//!   `tests/streaming_export_equivalence.rs`);
//! * a **retry decorator** ([`RetryingSink`]) wrapping any [`RecordSink`] with bounded
//!   retries and deterministic exponential backoff for transient write failures.
//!
//! Sink failures surface as [`Error::Sink`], naming the sink
//! (`csv:<table>`, `jsonl`) and preserving the underlying I/O error's kind — which is what
//! lets [`RetryingSink`] (and callers) distinguish a timed-out write worth retrying from a
//! full disk that is not.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::error::{Error, Result as CoreResult};
use crate::extract::MatchStats;
use crate::fieldtype::FieldType;
use crate::json::{self, JsonError, JsonValue};
use crate::parser::{FieldCell, RecordMatch};
use crate::pipeline::{ExtractionResult, PipelineStats};
use crate::relational::{build_schema, RowIdSynth, Schema, Table};
use crate::semtype::{
    annotate_table, ColumnAnnotation, CompositeColumn, SemanticType, TableAnnotation,
};
use crate::streaming::{StreamRecord, StreamSummary, WindowUnmatched};
use crate::structure::{Node, StructureTemplate};
use std::io::{self, Write};
use std::time::Duration;

/// Serializable summary of one discovered record type.
#[derive(Clone, Debug, PartialEq)]
pub struct StructureReport {
    /// Human-readable structure template (e.g. `[F:F] F\n`).
    pub template: String,
    /// Number of field columns in the denormalized output.
    pub field_count: usize,
    /// Number of records extracted.
    pub record_count: usize,
    /// Fraction of the dataset's bytes covered by records of this type.
    pub coverage: f64,
    /// Regularity score of the template (lower is better).
    pub score: f64,
    /// Per-column MDL data types (`enum` / `int` / `real` / `string`).
    pub column_types: Vec<String>,
    /// Per-column and composite semantic annotations.
    pub semantics: TableAnnotation,
    /// Names of the normalized tables (root first).
    pub tables: Vec<String>,
}

/// Serializable summary of the pipeline statistics (subset of [`PipelineStats`]).
#[derive(Clone, Debug, PartialEq)]
pub struct StatsReport {
    /// Candidates emitted by the generation step(s).
    pub candidates_generated: usize,
    /// Candidates surviving the pruning step(s).
    pub candidates_pruned: usize,
    /// Character sets enumerated.
    pub charsets_enumerated: usize,
    /// Candidate records examined.
    pub records_examined: usize,
    /// Bytes of sampled data used by the search.
    pub sample_bytes: usize,
    /// Pipeline iterations (record types attempted).
    pub iterations: usize,
    /// Per-step wall-clock seconds: sampling, generation, pruning, evaluation, extraction.
    pub step_seconds: [f64; 5],
    /// Extraction backend the final pass ran on (`span` or `legacy`).
    pub extraction_backend: String,
    /// Worker threads the final extraction pass was sharded across.
    pub extraction_threads: usize,
    /// Evaluation backend the refinement loop ran on (`span` or `legacy`).
    pub evaluation_backend: String,
    /// Worker threads the per-candidate evaluation loop was sharded across.
    pub evaluation_threads: usize,
    /// Template evaluations performed during refinement (including memo hits).
    pub evaluation_count: usize,
    /// Evaluations answered by the template-score memo without re-parsing.
    pub evaluation_memo_hits: usize,
    /// Memo hits resolved through the parent-lineage fast path.
    pub evaluation_lineage_hits: usize,
    /// Seconds the evaluation phase spent parsing candidates against the sample.
    pub evaluation_parse_seconds: f64,
    /// Seconds the evaluation phase spent computing regularity scores.
    pub evaluation_score_seconds: f64,
    /// Variant evaluations parsed by delta against their refinement parent.
    pub evaluation_delta_parses: usize,
    /// Span evaluations parsed from scratch (roots, unusable diffs).
    pub evaluation_full_parses: usize,
    /// Fraction of parent records copy-forwarded by delta parses (the delta-hit rate).
    pub evaluation_delta_record_reuse: f64,
    /// Fraction of columns re-aggregated by delta-parsed evaluations (dirty-column
    /// fraction; lower = more incremental scoring).
    pub evaluation_dirty_column_fraction: f64,
}

impl StatsReport {
    fn from_stats(stats: &PipelineStats) -> Self {
        let t = &stats.timings;
        StatsReport {
            candidates_generated: stats.candidates_generated,
            candidates_pruned: stats.candidates_pruned,
            charsets_enumerated: stats.charsets_enumerated,
            records_examined: stats.records_examined,
            sample_bytes: stats.sample_bytes,
            iterations: stats.iterations,
            step_seconds: [
                t.sampling.as_secs_f64(),
                t.generation.as_secs_f64(),
                t.pruning.as_secs_f64(),
                t.evaluation.as_secs_f64(),
                t.extraction.as_secs_f64(),
            ],
            extraction_backend: stats.extraction_backend.clone(),
            extraction_threads: stats.extraction_threads,
            evaluation_backend: stats.evaluation_backend.clone(),
            evaluation_threads: stats.evaluation_threads,
            evaluation_count: stats.evaluation_metrics.evaluations,
            evaluation_memo_hits: stats.evaluation_metrics.memo_hits,
            evaluation_lineage_hits: stats.evaluation_metrics.lineage_hits,
            evaluation_parse_seconds: stats.evaluation_metrics.parse_seconds,
            evaluation_score_seconds: stats.evaluation_metrics.score_seconds,
            evaluation_delta_parses: stats.evaluation_metrics.delta_parses,
            evaluation_full_parses: stats.evaluation_metrics.delta_full_parses,
            evaluation_delta_record_reuse: stats.evaluation_metrics.delta_record_reuse_rate(),
            evaluation_dirty_column_fraction: stats.evaluation_metrics.dirty_column_fraction(),
        }
    }
}

/// A complete, serializable extraction report.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtractionReport {
    /// Size of the input dataset in bytes.
    pub dataset_bytes: usize,
    /// Number of lines in the input dataset.
    pub dataset_lines: usize,
    /// Total records extracted across all record types.
    pub record_count: usize,
    /// Number of lines left as noise.
    pub noise_lines: usize,
    /// Fraction of the dataset's bytes left unexplained.
    pub noise_fraction: f64,
    /// One report per discovered record type.
    pub structures: Vec<StructureReport>,
    /// Search statistics.
    pub stats: StatsReport,
}

impl ExtractionReport {
    /// Builds a report from the raw input text and the extraction result.
    pub fn new(text: &str, result: &ExtractionResult) -> Self {
        let structures = result
            .structures
            .iter()
            .map(|s| StructureReport {
                template: s.template.to_string(),
                field_count: s.template.field_count(),
                record_count: s.records.len(),
                coverage: s.coverage,
                score: s.score,
                column_types: s
                    .column_types
                    .iter()
                    .map(FieldType::name)
                    .map(str::to_string)
                    .collect(),
                semantics: annotate_table(&s.denormalized),
                tables: s.relational.tables.iter().map(|t| t.name.clone()).collect(),
            })
            .collect();
        ExtractionReport {
            dataset_bytes: text.len(),
            dataset_lines: text.lines().count(),
            record_count: result.record_count(),
            noise_lines: result.noise_lines.len(),
            noise_fraction: result.noise_fraction,
            structures,
            stats: StatsReport::from_stats(&result.stats),
        }
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty()
    }

    /// Parses a report back from JSON.
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        Self::from_json_value(&JsonValue::parse(json)?)
    }

    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("dataset_bytes".into(), num(self.dataset_bytes)),
            ("dataset_lines".into(), num(self.dataset_lines)),
            ("record_count".into(), num(self.record_count)),
            ("noise_lines".into(), num(self.noise_lines)),
            (
                "noise_fraction".into(),
                JsonValue::Number(self.noise_fraction),
            ),
            (
                "structures".into(),
                JsonValue::Array(self.structures.iter().map(structure_to_json).collect()),
            ),
            ("stats".into(), stats_to_json(&self.stats)),
        ])
    }

    fn from_json_value(v: &JsonValue) -> Result<Self, JsonError> {
        Ok(ExtractionReport {
            dataset_bytes: v.require("dataset_bytes")?.as_usize()?,
            dataset_lines: v.require("dataset_lines")?.as_usize()?,
            record_count: v.require("record_count")?.as_usize()?,
            noise_lines: v.require("noise_lines")?.as_usize()?,
            noise_fraction: v.require("noise_fraction")?.as_f64()?,
            structures: v
                .require("structures")?
                .as_array()?
                .iter()
                .map(structure_from_json)
                .collect::<Result<_, _>>()?,
            stats: stats_from_json(v.require("stats")?)?,
        })
    }
}

fn num(n: usize) -> JsonValue {
    JsonValue::Number(n as f64)
}

fn strings(items: &[String]) -> JsonValue {
    JsonValue::Array(items.iter().map(|s| JsonValue::String(s.clone())).collect())
}

fn string_vec(v: &JsonValue) -> Result<Vec<String>, JsonError> {
    v.as_array()?
        .iter()
        .map(|item| item.as_str().map(str::to_string))
        .collect()
}

fn structure_to_json(s: &StructureReport) -> JsonValue {
    JsonValue::Object(vec![
        ("template".into(), JsonValue::String(s.template.clone())),
        ("field_count".into(), num(s.field_count)),
        ("record_count".into(), num(s.record_count)),
        ("coverage".into(), JsonValue::Number(s.coverage)),
        ("score".into(), JsonValue::Number(s.score)),
        ("column_types".into(), strings(&s.column_types)),
        ("semantics".into(), semantics_to_json(&s.semantics)),
        ("tables".into(), strings(&s.tables)),
    ])
}

fn structure_from_json(v: &JsonValue) -> Result<StructureReport, JsonError> {
    Ok(StructureReport {
        template: v.require("template")?.as_str()?.to_string(),
        field_count: v.require("field_count")?.as_usize()?,
        record_count: v.require("record_count")?.as_usize()?,
        coverage: v.require("coverage")?.as_f64()?,
        score: v.require("score")?.as_f64()?,
        column_types: string_vec(v.require("column_types")?)?,
        semantics: semantics_from_json(v.require("semantics")?)?,
        tables: string_vec(v.require("tables")?)?,
    })
}

fn semantics_to_json(annotation: &TableAnnotation) -> JsonValue {
    let columns = annotation
        .columns
        .iter()
        .map(|c| {
            JsonValue::Object(vec![
                ("column".into(), num(c.column)),
                (
                    "semantic".into(),
                    JsonValue::String(c.semantic.name().into()),
                ),
                ("confidence".into(), JsonValue::Number(c.confidence)),
            ])
        })
        .collect();
    let composites = annotation
        .composites
        .iter()
        .map(|c| {
            JsonValue::Object(vec![
                ("first_column".into(), num(c.first_column)),
                ("width".into(), num(c.width)),
                (
                    "delimiter".into(),
                    JsonValue::String(c.delimiter.to_string()),
                ),
                (
                    "semantic".into(),
                    JsonValue::String(c.semantic.name().into()),
                ),
            ])
        })
        .collect();
    JsonValue::Object(vec![
        ("columns".into(), JsonValue::Array(columns)),
        ("composites".into(), JsonValue::Array(composites)),
    ])
}

fn semantic_from_json(v: &JsonValue) -> Result<SemanticType, JsonError> {
    let name = v.as_str()?;
    SemanticType::from_name(name)
        .ok_or_else(|| JsonError::shape(format!("unknown semantic type {name:?}")))
}

fn semantics_from_json(v: &JsonValue) -> Result<TableAnnotation, JsonError> {
    let columns = v
        .require("columns")?
        .as_array()?
        .iter()
        .map(|c| {
            Ok(ColumnAnnotation {
                column: c.require("column")?.as_usize()?,
                semantic: semantic_from_json(c.require("semantic")?)?,
                confidence: c.require("confidence")?.as_f64()?,
            })
        })
        .collect::<Result<_, JsonError>>()?;
    let composites = v
        .require("composites")?
        .as_array()?
        .iter()
        .map(|c| {
            let delimiter = c.require("delimiter")?.as_str()?;
            Ok(CompositeColumn {
                first_column: c.require("first_column")?.as_usize()?,
                width: c.require("width")?.as_usize()?,
                delimiter: delimiter
                    .chars()
                    .next()
                    .ok_or_else(|| JsonError::shape("empty composite delimiter"))?,
                semantic: semantic_from_json(c.require("semantic")?)?,
            })
        })
        .collect::<Result<_, JsonError>>()?;
    Ok(TableAnnotation {
        columns,
        composites,
    })
}

fn stats_to_json(stats: &StatsReport) -> JsonValue {
    JsonValue::Object(vec![
        (
            "candidates_generated".into(),
            num(stats.candidates_generated),
        ),
        ("candidates_pruned".into(), num(stats.candidates_pruned)),
        ("charsets_enumerated".into(), num(stats.charsets_enumerated)),
        ("records_examined".into(), num(stats.records_examined)),
        ("sample_bytes".into(), num(stats.sample_bytes)),
        ("iterations".into(), num(stats.iterations)),
        (
            "extraction_backend".into(),
            JsonValue::String(stats.extraction_backend.clone()),
        ),
        ("extraction_threads".into(), num(stats.extraction_threads)),
        (
            "evaluation_backend".into(),
            JsonValue::String(stats.evaluation_backend.clone()),
        ),
        ("evaluation_threads".into(), num(stats.evaluation_threads)),
        ("evaluation_count".into(), num(stats.evaluation_count)),
        (
            "evaluation_memo_hits".into(),
            num(stats.evaluation_memo_hits),
        ),
        (
            "evaluation_lineage_hits".into(),
            num(stats.evaluation_lineage_hits),
        ),
        (
            "evaluation_parse_seconds".into(),
            JsonValue::Number(stats.evaluation_parse_seconds),
        ),
        (
            "evaluation_score_seconds".into(),
            JsonValue::Number(stats.evaluation_score_seconds),
        ),
        (
            "evaluation_delta_parses".into(),
            num(stats.evaluation_delta_parses),
        ),
        (
            "evaluation_full_parses".into(),
            num(stats.evaluation_full_parses),
        ),
        (
            "evaluation_delta_record_reuse".into(),
            JsonValue::Number(stats.evaluation_delta_record_reuse),
        ),
        (
            "evaluation_dirty_column_fraction".into(),
            JsonValue::Number(stats.evaluation_dirty_column_fraction),
        ),
        (
            "step_seconds".into(),
            JsonValue::Array(
                stats
                    .step_seconds
                    .iter()
                    .map(|s| JsonValue::Number(*s))
                    .collect(),
            ),
        ),
    ])
}

fn stats_from_json(v: &JsonValue) -> Result<StatsReport, JsonError> {
    let seconds = v.require("step_seconds")?.as_array()?;
    if seconds.len() != 5 {
        return Err(JsonError::shape("step_seconds must have 5 entries"));
    }
    let mut step_seconds = [0.0f64; 5];
    for (slot, value) in step_seconds.iter_mut().zip(seconds) {
        *slot = value.as_f64()?;
    }
    Ok(StatsReport {
        candidates_generated: v.require("candidates_generated")?.as_usize()?,
        candidates_pruned: v.require("candidates_pruned")?.as_usize()?,
        charsets_enumerated: v.require("charsets_enumerated")?.as_usize()?,
        records_examined: v.require("records_examined")?.as_usize()?,
        sample_bytes: v.require("sample_bytes")?.as_usize()?,
        iterations: v.require("iterations")?.as_usize()?,
        step_seconds,
        // Reports written before the span extraction engine lack these two fields.
        extraction_backend: match v.get("extraction_backend") {
            Some(b) => b.as_str()?.to_string(),
            None => String::new(),
        },
        extraction_threads: match v.get("extraction_threads") {
            Some(t) => t.as_usize()?,
            None => 0,
        },
        // Reports written before the span evaluation engine lack the evaluation fields.
        evaluation_backend: match v.get("evaluation_backend") {
            Some(b) => b.as_str()?.to_string(),
            None => String::new(),
        },
        evaluation_threads: match v.get("evaluation_threads") {
            Some(t) => t.as_usize()?,
            None => 0,
        },
        evaluation_count: match v.get("evaluation_count") {
            Some(t) => t.as_usize()?,
            None => 0,
        },
        evaluation_memo_hits: match v.get("evaluation_memo_hits") {
            Some(t) => t.as_usize()?,
            None => 0,
        },
        evaluation_parse_seconds: match v.get("evaluation_parse_seconds") {
            Some(t) => t.as_f64()?,
            None => 0.0,
        },
        evaluation_score_seconds: match v.get("evaluation_score_seconds") {
            Some(t) => t.as_f64()?,
            None => 0.0,
        },
        // Reports written before delta evaluation lack the delta telemetry.
        evaluation_lineage_hits: match v.get("evaluation_lineage_hits") {
            Some(t) => t.as_usize()?,
            None => 0,
        },
        evaluation_delta_parses: match v.get("evaluation_delta_parses") {
            Some(t) => t.as_usize()?,
            None => 0,
        },
        evaluation_full_parses: match v.get("evaluation_full_parses") {
            Some(t) => t.as_usize()?,
            None => 0,
        },
        evaluation_delta_record_reuse: match v.get("evaluation_delta_record_reuse") {
            Some(t) => t.as_f64()?,
            None => 0.0,
        },
        evaluation_dirty_column_fraction: match v.get("evaluation_dirty_column_fraction") {
            Some(t) => t.as_f64()?,
            None => 0.0,
        },
    })
}

/// Quotes one CSV cell per RFC 4180: cells containing commas, quotes, or newlines are wrapped
/// in double quotes with inner quotes doubled.
pub fn csv_quote(cell: &str) -> String {
    let mut out = String::new();
    push_csv_cell(&mut out, cell);
    out
}

/// Appends one RFC-4180-quoted cell to `out` without intermediate allocation — this is the
/// point where span-backed table cells finally become owned bytes.
fn push_csv_cell(out: &mut String, cell: &str) {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') || cell.contains('\r') {
        out.reserve(cell.len() + 2);
        out.push('"');
        for c in cell.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(cell);
    }
}

/// Serializes one relational table as CSV text (header row first).  Cell values resolve
/// straight from the table's shared source buffer into the output — the only `String`
/// conversion in the relational path happens here, at the serialization boundary.
pub fn table_to_csv(table: &Table) -> String {
    let mut out = String::new();
    push_csv_row(&mut out, table.columns.iter().map(String::as_str));
    for r in 0..table.row_count() {
        push_csv_row(&mut out, table.row(r));
    }
    out
}

fn push_csv_row<'a>(out: &mut String, cells: impl Iterator<Item = &'a str>) {
    for (i, c) in cells.enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_csv_cell(out, c);
    }
    out.push('\n');
}

/// Writes one table as CSV to any [`Write`] sink (buffer the sink for files / sockets).
pub fn write_table_csv<W: Write>(table: &Table, mut sink: W) -> io::Result<()> {
    sink.write_all(table_to_csv(table).as_bytes())
}

/// Serializes every normalized table of every record type as `(table name, CSV text)` pairs,
/// in discovery order with the root table of each type first.
pub fn all_tables_csv(result: &ExtractionResult) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for s in &result.structures {
        for t in &s.relational.tables {
            out.push((t.name.clone(), table_to_csv(t)));
        }
    }
    out
}

// -------------------------------------------------------------------------------------------
// Streaming sinks
// -------------------------------------------------------------------------------------------

/// A push-based consumer of streaming extraction records.
///
/// [`StreamSession`](crate::streaming::StreamSession) drives the sink:
/// [`begin`](Self::begin) once with the templates discovered on the stream head,
/// [`record`](Self::record) once per extracted record (a zero-copy [`StreamRecord`] view
/// over the current chunk window), and [`finish`](Self::finish) once at end of stream.
/// Sinks compose: [`Tee`] fans one stream out to two sinks, [`CountingSink`] only counts,
/// [`CsvSink`] and [`JsonLinesSink`] serialize.
///
/// Driving one sink across **several** streams is sink-specific: [`CountingSink`] and
/// [`JsonLinesSink`] reset their counters on every `begin` (the JSON Lines writer keeps
/// appending), while [`CsvSink`] refuses a second `begin` — its per-table writers and row
/// ids belong to exactly one stream.
pub trait RecordSink {
    /// Receives the discovered structure templates before any record is pushed.
    fn begin(&mut self, templates: &[StructureTemplate]) -> CoreResult<()>;
    /// Consumes one record; `record` borrows the current chunk window and is only valid for
    /// the duration of the call.
    fn record(&mut self, record: &StreamRecord<'_>) -> CoreResult<()>;
    /// Flushes any buffered state at end of stream.
    fn finish(&mut self) -> CoreResult<()>;
}

/// A mutable reference to a sink is itself a sink, so decorators that take ownership
/// ([`RetryingSink`], [`crate::fault::FailingSink`]) can wrap a borrowed sink and hand it
/// back to the caller afterwards.
impl<S: RecordSink + ?Sized> RecordSink for &mut S {
    fn begin(&mut self, templates: &[StructureTemplate]) -> CoreResult<()> {
        (**self).begin(templates)
    }

    fn record(&mut self, record: &StreamRecord<'_>) -> CoreResult<()> {
        (**self).record(record)
    }

    fn finish(&mut self) -> CoreResult<()> {
        (**self).finish()
    }
}

/// A sink that counts records per template without writing anything — the cheapest possible
/// consumer (streaming summaries, throughput benchmarks).
#[derive(Clone, Debug, Default)]
pub struct CountingSink {
    /// Records seen per template index.
    pub per_template: Vec<usize>,
    /// Total records seen.
    pub records: usize,
}

impl RecordSink for CountingSink {
    fn begin(&mut self, templates: &[StructureTemplate]) -> CoreResult<()> {
        self.per_template = vec![0; templates.len()];
        self.records = 0;
        Ok(())
    }

    fn record(&mut self, record: &StreamRecord<'_>) -> CoreResult<()> {
        if let Some(slot) = self.per_template.get_mut(record.template_index) {
            *slot += 1;
        }
        self.records += 1;
        Ok(())
    }

    fn finish(&mut self) -> CoreResult<()> {
        Ok(())
    }
}

/// Fans every callback out to two sinks, in order (nest `Tee`s for wider fan-out).
pub struct Tee<A, B>(pub A, pub B);

impl<A: RecordSink, B: RecordSink> RecordSink for Tee<A, B> {
    fn begin(&mut self, templates: &[StructureTemplate]) -> CoreResult<()> {
        self.0.begin(templates)?;
        self.1.begin(templates)
    }

    fn record(&mut self, record: &StreamRecord<'_>) -> CoreResult<()> {
        self.0.record(record)?;
        self.1.record(record)
    }

    fn finish(&mut self) -> CoreResult<()> {
        self.0.finish()?;
        self.1.finish()
    }
}

/// How the retry decorator waits between attempts.  Injectable so tests can assert the
/// exact backoff sequence without sleeping.
pub trait Sleeper {
    /// Waits for `duration` (or records that it would have).
    fn sleep(&mut self, duration: Duration);
}

/// The production sleeper: blocks the current thread.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep(&mut self, duration: Duration) {
        std::thread::sleep(duration);
    }
}

/// A sleeper that records every requested delay without waiting (tests).
#[derive(Clone, Debug, Default)]
pub struct RecordingSleeper {
    /// Every delay requested, in order.
    pub slept: Vec<Duration>,
}

impl Sleeper for RecordingSleeper {
    fn sleep(&mut self, duration: Duration) {
        self.slept.push(duration);
    }
}

/// Bounded-retry policy with deterministic exponential backoff: attempt `k` (0-based)
/// waits `base_delay * factor^k`, capped at `max_delay`.  No jitter — the schedule is a
/// pure function of the attempt number, which is what makes retry behaviour testable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per failing call (so a call is attempted at most `max_retries + 1` times).
    pub max_retries: usize,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Multiplier applied per subsequent retry.
    pub factor: u32,
    /// Ceiling on any single delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            factor: 2,
            max_delay: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based): `base_delay * factor^attempt`,
    /// saturating, capped at [`max_delay`](Self::max_delay).
    pub fn delay(&self, attempt: usize) -> Duration {
        let factor = u32::try_from(attempt)
            .ok()
            .and_then(|a| self.factor.checked_pow(a))
            .unwrap_or(u32::MAX);
        self.base_delay.saturating_mul(factor).min(self.max_delay)
    }
}

/// Wraps any [`RecordSink`] with bounded retries + exponential backoff for **transient**
/// failures ([`Error::is_transient`]: interrupted / timed-out / would-block I/O, directly
/// or behind a sink wrapper).  Permanent errors and exhausted retries propagate unchanged.
///
/// [`accepted_records`](Self::accepted_records) counts records the inner sink accepted;
/// after a successful [`finish`](RecordSink::finish) (which retries too, and flushes the
/// inner sink) that count is the number of durably written records — the number a caller
/// resuming after a failure can rely on.
///
/// The decorator replays the *call*, not partial bytes: it is intended for sinks whose
/// `record` is atomic with respect to failure (buffered writers that fail before touching
/// the stream, network sinks with transactional appends).
pub struct RetryingSink<S, P: Sleeper = ThreadSleeper> {
    inner: S,
    policy: RetryPolicy,
    sleeper: P,
    accepted: usize,
    retries: usize,
    finished: bool,
}

impl<S: RecordSink> RetryingSink<S> {
    /// Wraps `inner` with the given policy, sleeping on the real clock.
    pub fn new(inner: S, policy: RetryPolicy) -> Self {
        RetryingSink::with_sleeper(inner, policy, ThreadSleeper)
    }
}

impl<S: RecordSink, P: Sleeper> RetryingSink<S, P> {
    /// Wraps `inner` with an injected sleeper (tests use [`RecordingSleeper`]).
    pub fn with_sleeper(inner: S, policy: RetryPolicy, sleeper: P) -> Self {
        RetryingSink {
            inner,
            policy,
            sleeper,
            accepted: 0,
            retries: 0,
            finished: false,
        }
    }

    /// Records the inner sink accepted; durable once [`finish`](RecordSink::finish) has
    /// succeeded (see [`finished`](Self::finished)).
    pub fn accepted_records(&self) -> usize {
        self.accepted
    }

    /// Total retries performed across all calls.
    pub fn retries(&self) -> usize {
        self.retries
    }

    /// Whether `finish` completed successfully (everything accepted is flushed/durable).
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Consumes the decorator, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Direct access to the inner sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Direct access to the sleeper (tests read the recorded backoff schedule out of a
    /// [`RecordingSleeper`]).
    pub fn sleeper(&self) -> &P {
        &self.sleeper
    }
}

/// Runs `call` with the retry policy; disjoint borrows so callers can close over fields of
/// the same struct the sleeper lives in.
fn run_with_retries<T>(
    policy: &RetryPolicy,
    sleeper: &mut dyn Sleeper,
    retries: &mut usize,
    mut call: impl FnMut() -> CoreResult<T>,
) -> CoreResult<T> {
    let mut attempt = 0usize;
    loop {
        match call() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt < policy.max_retries => {
                sleeper.sleep(policy.delay(attempt));
                attempt += 1;
                *retries += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

impl<S: RecordSink, P: Sleeper> RecordSink for RetryingSink<S, P> {
    fn begin(&mut self, templates: &[StructureTemplate]) -> CoreResult<()> {
        let inner = &mut self.inner;
        run_with_retries(&self.policy, &mut self.sleeper, &mut self.retries, || {
            inner.begin(templates)
        })
    }

    fn record(&mut self, record: &StreamRecord<'_>) -> CoreResult<()> {
        let inner = &mut self.inner;
        run_with_retries(&self.policy, &mut self.sleeper, &mut self.retries, || {
            inner.record(record)
        })?;
        self.accepted += 1;
        Ok(())
    }

    fn finish(&mut self) -> CoreResult<()> {
        let inner = &mut self.inner;
        run_with_retries(&self.policy, &mut self.sleeper, &mut self.retries, || {
            inner.finish()
        })?;
        self.finished = true;
        Ok(())
    }
}

/// Per-table incremental CSV row writer: rows of one table always arrive sequentially
/// (template traversal opens and closes child rows before the next sibling repetition), so
/// cells can stream out left to right with empty-cell padding for any skipped positions.
struct CsvTableState<W> {
    name: String,
    out: W,
    n_data: usize,
    /// Data cells already emitted in the currently open row.
    filled: usize,
    /// Row id of the currently open (or most recently closed) row.
    current_id: usize,
}

impl<W: Write> CsvTableState<W> {
    /// Opens a row: synthesized key cells first, exactly like the materializing converter.
    /// `buf` is the sink's recycled staging buffer — no per-row allocation.
    fn open_row(
        &mut self,
        id: usize,
        parent: Option<(usize, usize)>,
        buf: &mut String,
    ) -> io::Result<()> {
        use std::fmt::Write as _;
        self.current_id = id;
        self.filled = 0;
        buf.clear();
        let _ = write!(buf, "{id}");
        if let Some((parent_id, position)) = parent {
            let _ = write!(buf, ",{parent_id},{position}");
        }
        self.out.write_all(buf.as_bytes())
    }

    /// Emits the data cell at `position`, padding skipped positions with empty cells.
    fn data_cell(&mut self, position: usize, text: &str, buf: &mut String) -> io::Result<()> {
        debug_assert!(position >= self.filled, "cells arrive in column order");
        if position < self.filled {
            return Ok(());
        }
        while self.filled < position {
            self.out.write_all(b",")?;
            self.filled += 1;
        }
        buf.clear();
        buf.push(',');
        push_csv_cell(buf, text);
        self.out.write_all(buf.as_bytes())?;
        self.filled += 1;
        Ok(())
    }

    /// Closes the open row: pads the remaining data columns and terminates the line.
    fn close_row(&mut self) -> io::Result<()> {
        while self.filled < self.n_data {
            self.out.write_all(b",")?;
            self.filled += 1;
        }
        self.out.write_all(b"\n")
    }
}

/// Streams the **normalized relational output** (one root table per record type plus one
/// table per array node, linked by synthesized keys) as CSV, byte-identical to running
/// [`table_to_csv`] on the materialized [`to_relational`](crate::relational::to_relational)
/// tables — without ever building those tables.
///
/// One writer per table is obtained from the factory (called with the table name, e.g.
/// `type0`, `type0_array0`, in the same order the materialized tables appear in).  Row ids
/// and foreign keys come from a [`RowIdSynth`] that lives for the whole stream, so the
/// numbering stays correct across chunk-window boundaries.
pub struct CsvSink<W: Write, F: FnMut(&str) -> io::Result<W>> {
    factory: F,
    templates: Vec<StructureTemplate>,
    schemas: Vec<Schema>,
    /// Index of each template's first table in the flat `tables` list.
    bases: Vec<usize>,
    tables: Vec<CsvTableState<W>>,
    synth: RowIdSynth,
    buf: String,
}

impl<W: Write, F: FnMut(&str) -> io::Result<W>> CsvSink<W, F> {
    /// Creates a sink that obtains one writer per normalized table from `factory`.
    pub fn new(factory: F) -> Self {
        CsvSink {
            factory,
            templates: Vec::new(),
            schemas: Vec::new(),
            bases: Vec::new(),
            tables: Vec::new(),
            synth: RowIdSynth::default(),
            buf: String::new(),
        }
    }

    /// Consumes the sink, returning every `(table name, writer)` pair in creation order
    /// (tests and callers that collect output in memory).
    pub fn into_writers(self) -> Vec<(String, W)> {
        self.tables.into_iter().map(|t| (t.name, t.out)).collect()
    }
}

impl<W: Write, F: FnMut(&str) -> io::Result<W>> RecordSink for CsvSink<W, F> {
    fn begin(&mut self, templates: &[StructureTemplate]) -> CoreResult<()> {
        if !self.tables.is_empty() {
            // A second stream would re-run the factory for the same table names
            // (truncating the first stream's files) and restart the id numbering.
            return Err(crate::error::Error::InvalidConfig(
                "CsvSink cannot be reused across streams; create a new sink per stream".into(),
            ));
        }
        self.templates = templates.to_vec();
        for (idx, template) in templates.iter().enumerate() {
            let schema = build_schema(template, &format!("type{idx}"));
            self.bases.push(self.tables.len());
            for st in &schema.tables {
                let mut out = (self.factory)(&st.name)
                    .map_err(|e| Error::io(&e).in_sink(format!("csv:{}", st.name)))?;
                self.buf.clear();
                push_csv_row(&mut self.buf, st.header().iter().map(String::as_str));
                out.write_all(self.buf.as_bytes())
                    .map_err(|e| Error::io(&e).in_sink(format!("csv:{}", st.name)))?;
                self.tables.push(CsvTableState {
                    name: st.name.clone(),
                    out,
                    n_data: st.column_ids.len(),
                    filled: 0,
                    current_id: 0,
                });
            }
            self.schemas.push(schema);
        }
        self.synth = RowIdSynth::new(self.tables.len());
        Ok(())
    }

    fn record(&mut self, record: &StreamRecord<'_>) -> CoreResult<()> {
        let base = self.bases[record.template_index];
        let schema = &self.schemas[record.template_index];
        let template = &self.templates[record.template_index];
        let mut cells = record.cells.iter();
        let mut reps = record.reps.iter();
        let mut array_counter = 0usize;
        let id = self.synth.next_id(base);
        let sink_id = |e: &io::Error| Error::io(e).in_sink("csv");
        self.tables[base]
            .open_row(id, None, &mut self.buf)
            .map_err(|e| sink_id(&e))?;
        emit_group(
            template.nodes(),
            schema,
            base,
            0,
            &mut self.tables,
            &mut self.synth,
            record,
            &mut cells,
            &mut reps,
            &mut array_counter,
            &mut self.buf,
        )
        .map_err(|e| sink_id(&e))?;
        self.tables[base].close_row().map_err(|e| sink_id(&e))?;
        debug_assert!(cells.next().is_none(), "all cells consumed");
        debug_assert!(reps.next().is_none(), "all repetition counts consumed");
        Ok(())
    }

    fn finish(&mut self) -> CoreResult<()> {
        for t in &mut self.tables {
            t.out
                .flush()
                .map_err(|e| Error::io(&e).in_sink(format!("csv:{}", t.name)))?;
        }
        Ok(())
    }
}

/// Streams the cells and repetition counts of one repetition group into the table rows it
/// spans, mirroring the materializing converter's recursion exactly: fields land in the
/// current table's open row, each array repetition opens/fills/closes one child-table row.
/// Array numbering replays the span engine's static pre-order scheme (every repetition
/// re-numbers inner arrays from the same base).
#[allow(clippy::too_many_arguments)]
fn emit_group<W: Write>(
    nodes: &[Node],
    schema: &Schema,
    base: usize,
    table: usize,
    tables: &mut [CsvTableState<W>],
    synth: &mut RowIdSynth,
    record: &StreamRecord<'_>,
    cells: &mut std::slice::Iter<'_, FieldCell>,
    reps: &mut std::slice::Iter<'_, u32>,
    array_counter: &mut usize,
    buf: &mut String,
) -> io::Result<()> {
    for node in nodes {
        match node {
            Node::Field => {
                let Some(cell) = cells.next() else {
                    debug_assert!(false, "cell stream matches template shape");
                    continue;
                };
                if let Some(pos) = schema.tables[table]
                    .column_ids
                    .iter()
                    .position(|c| *c == cell.column)
                {
                    tables[base + table].data_cell(pos, record.cell_text(cell), buf)?;
                }
            }
            Node::Literal(_) => {}
            Node::Array { body, .. } => {
                let my_id = *array_counter;
                *array_counter += 1;
                let count = reps.next().copied().unwrap_or(0) as usize;
                // The schema is built from the same template, so every array node has a
                // table; a miss means the sink was fed records from a different template
                // set — surface it as a sink error rather than tearing the process down.
                let Some(child) = schema.tables.iter().position(|t| t.array_id == Some(my_id))
                else {
                    debug_assert!(false, "array table exists for every array node");
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("no child table for array node {my_id}"),
                    ));
                };
                let parent_id = tables[base + table].current_id;
                for position in 0..count {
                    let id = synth.next_id(base + child);
                    tables[base + child].open_row(id, Some((parent_id, position)), buf)?;
                    let mut inner = *array_counter;
                    emit_group(
                        body, schema, base, child, tables, synth, record, cells, reps, &mut inner,
                        buf,
                    )?;
                    tables[base + child].close_row()?;
                }
                *array_counter += body.iter().map(Node::array_count).sum::<usize>();
            }
        }
    }
    Ok(())
}

/// Streams records as JSON Lines — one object per record, in stream order, of the form
/// `{"type":0,"lines":[12,14],"columns":[["a"],["x","y"]]}` (one inner array per template
/// column; array columns carry one entry per repetition).  Byte-identical to
/// [`all_records_jsonl`] on the materialized extraction of the same stream.
pub struct JsonLinesSink<W: Write> {
    out: W,
    field_counts: Vec<usize>,
    /// Recycled per-column span buffers (window-relative offsets).
    spans: Vec<Vec<(usize, usize)>>,
    buf: String,
    /// Records written.
    pub records: usize,
}

impl<W: Write> JsonLinesSink<W> {
    /// Creates a sink writing JSON Lines to `out` (buffer the writer for files).
    pub fn new(out: W) -> Self {
        JsonLinesSink {
            out,
            field_counts: Vec::new(),
            spans: Vec::new(),
            buf: String::new(),
            records: 0,
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_writer(self) -> W {
        self.out
    }
}

impl<W: Write> RecordSink for JsonLinesSink<W> {
    fn begin(&mut self, templates: &[StructureTemplate]) -> CoreResult<()> {
        self.field_counts = templates
            .iter()
            .map(StructureTemplate::field_count)
            .collect();
        let max = self.field_counts.iter().copied().max().unwrap_or(0);
        self.spans = vec![Vec::new(); max];
        self.records = 0;
        Ok(())
    }

    fn record(&mut self, record: &StreamRecord<'_>) -> CoreResult<()> {
        let n = self.field_counts[record.template_index];
        for col in self.spans.iter_mut().take(n) {
            col.clear();
        }
        for cell in record.cells {
            if cell.column < n {
                self.spans[cell.column].push((cell.start, cell.end));
            }
        }
        self.buf.clear();
        push_jsonl_record(
            &mut self.buf,
            record.template_index,
            record.line_span,
            self.spans[..n]
                .iter()
                .map(|col| col.iter().map(|&(s, e)| &record.window[s..e])),
        );
        self.out
            .write_all(self.buf.as_bytes())
            .map_err(|e| Error::io(&e).in_sink("jsonl"))?;
        self.records += 1;
        Ok(())
    }

    fn finish(&mut self) -> CoreResult<()> {
        self.out
            .flush()
            .map_err(|e| Error::io(&e).in_sink("jsonl"))?;
        Ok(())
    }
}

/// Appends one JSON Lines record — the single formatting routine shared by the streaming
/// sink and the materialized serializer, which is what makes their outputs byte-identical.
fn push_jsonl_record<'a, C, V>(
    out: &mut String,
    template_index: usize,
    line_span: (usize, usize),
    columns: C,
) where
    C: IntoIterator<Item = V>,
    V: IntoIterator<Item = &'a str>,
{
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"type\":{template_index},\"lines\":[{},{}],\"columns\":[",
        line_span.0, line_span.1
    );
    for (i, col) in columns.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, value) in col.into_iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json::escape_into(out, value);
        }
        out.push(']');
    }
    out.push_str("]}\n");
}

/// Serializes every extracted record of a materialized [`ExtractionResult`] as JSON Lines,
/// in document order across all record types — the in-memory counterpart of
/// [`JsonLinesSink`] (the streaming sink emits exactly these bytes).
pub fn all_records_jsonl(text: &str, result: &ExtractionResult) -> String {
    let mut refs: Vec<(usize, &RecordMatch)> = result
        .structures
        .iter()
        .enumerate()
        .flat_map(|(idx, s)| s.records.iter().map(move |r| (idx, r)))
        .collect();
    refs.sort_by_key(|(_, r)| r.line_span.0);
    let mut out = String::new();
    let mut columns: Vec<Vec<&str>> = Vec::new();
    for (idx, rec) in refs {
        let n = result.structures[idx].template.field_count();
        // Recycle the inner vectors' capacity: grow to the widest template seen, clear in
        // place, and use only the first `n` columns for this record.
        if columns.len() < n {
            columns.resize_with(n, Vec::new);
        }
        for col in &mut columns[..n] {
            col.clear();
        }
        for cell in &rec.fields {
            if cell.column < n {
                columns[cell.column].push(&text[cell.start..cell.end]);
            }
        }
        push_jsonl_record(
            &mut out,
            idx,
            rec.line_span,
            columns[..n].iter().map(|c| c.iter().copied()),
        );
    }
    out
}

/// The streaming counterpart of [`ExtractionReport`]: a machine-readable summary of one
/// bounded-memory streaming run (what the CLI's `extract --stream --format json` prints).
#[derive(Clone, Debug, PartialEq)]
pub struct StreamReport {
    /// Records emitted to the sink.
    pub records: usize,
    /// Lines classified as noise.
    pub noise_lines: usize,
    /// Total bytes consumed from the stream.
    pub bytes_processed: usize,
    /// Total lines consumed from the stream.
    pub lines_processed: usize,
    /// Chunk windows processed.
    pub windows: usize,
    /// Peak resident window bytes (see
    /// [`StreamSummary::peak_window_bytes`]).
    pub peak_window_bytes: usize,
    /// Wall-clock seconds spent inside the sink callbacks.
    pub sink_seconds: f64,
    /// Wall-clock seconds spent matching templates against window text.
    pub match_seconds: f64,
    /// Lines diverted to the quarantine (all reasons).
    pub quarantined_lines: usize,
    /// Input lines that were not valid UTF-8 (processed lossily).
    pub invalid_utf8_lines: usize,
    /// Input lines dropped for exceeding the line-bytes budget.
    pub oversized_lines: usize,
    /// Why the stream stopped early ([`crate::streaming::StopReason::name`]), `None` when
    /// it ran to the end.
    pub stopped_reason: Option<String>,
    /// Human-readable renderings of the discovered structure templates.
    pub templates: Vec<String>,
    /// Aggregate matcher work counters (fused prefilter dispatches, per-template trials
    /// executed vs pruned) summed over every window.
    pub match_stats: MatchStats,
    /// The same counters per processed window, in window order.
    pub window_match_stats: Vec<MatchStats>,
    /// Per-window line and unmatched-line counts, in window order — the drift signal the
    /// serving layer's metrics endpoint shares with this report.
    pub window_unmatched: Vec<WindowUnmatched>,
}

/// Serializes one [`MatchStats`] as a JSON object.
fn match_stats_json(stats: &MatchStats) -> JsonValue {
    JsonValue::Object(vec![
        (
            "lines_dispatched".into(),
            num(stats.lines_dispatched as usize),
        ),
        (
            "fused_dispatches".into(),
            num(stats.fused_dispatches as usize),
        ),
        (
            "templates_trialed".into(),
            num(stats.templates_trialed as usize),
        ),
        (
            "templates_pruned".into(),
            num(stats.templates_pruned as usize),
        ),
        ("prune_rate".into(), JsonValue::Number(stats.prune_rate())),
        (
            "fused_dispatch_rate".into(),
            JsonValue::Number(stats.fused_dispatch_rate()),
        ),
    ])
}

/// Parses one [`MatchStats`] object (rates are derived, not read back).
fn match_stats_from_json(v: &JsonValue) -> Result<MatchStats, JsonError> {
    let field = |key: &str| -> Result<u64, JsonError> {
        v.get(key).map_or(Ok(0), |x| x.as_usize().map(|n| n as u64))
    };
    Ok(MatchStats {
        lines_dispatched: field("lines_dispatched")?,
        fused_dispatches: field("fused_dispatches")?,
        templates_trialed: field("templates_trialed")?,
        templates_pruned: field("templates_pruned")?,
    })
}

impl StreamReport {
    /// Builds the report from a streaming run's summary.
    pub fn new(summary: &StreamSummary) -> Self {
        StreamReport {
            records: summary.records,
            noise_lines: summary.noise_lines,
            bytes_processed: summary.bytes_processed,
            lines_processed: summary.lines_processed,
            windows: summary.windows,
            peak_window_bytes: summary.peak_window_bytes,
            sink_seconds: summary.sink_seconds,
            match_seconds: summary.match_seconds,
            quarantined_lines: summary.quarantined_lines,
            invalid_utf8_lines: summary.invalid_utf8_lines,
            oversized_lines: summary.oversized_lines,
            stopped_reason: summary.stopped_reason.map(|r| r.name().to_string()),
            templates: summary.templates.iter().map(|t| t.to_string()).collect(),
            match_stats: summary.match_stats(),
            window_match_stats: summary.window_match_stats.clone(),
            window_unmatched: summary.window_unmatched.clone(),
        }
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty()
    }

    /// The report as a [`JsonValue`] tree, for callers that nest it inside a larger
    /// document (the serve metrics endpoint wraps it in a `stream` section).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("records".into(), num(self.records)),
            ("noise_lines".into(), num(self.noise_lines)),
            ("bytes_processed".into(), num(self.bytes_processed)),
            ("lines_processed".into(), num(self.lines_processed)),
            ("windows".into(), num(self.windows)),
            ("peak_window_bytes".into(), num(self.peak_window_bytes)),
            ("sink_seconds".into(), JsonValue::Number(self.sink_seconds)),
            (
                "match_seconds".into(),
                JsonValue::Number(self.match_seconds),
            ),
            ("quarantined_lines".into(), num(self.quarantined_lines)),
            ("invalid_utf8_lines".into(), num(self.invalid_utf8_lines)),
            ("oversized_lines".into(), num(self.oversized_lines)),
            (
                "stopped_reason".into(),
                match &self.stopped_reason {
                    Some(r) => JsonValue::String(r.clone()),
                    None => JsonValue::Null,
                },
            ),
            ("templates".into(), strings(&self.templates)),
            ("match_stats".into(), match_stats_json(&self.match_stats)),
            (
                "window_match_stats".into(),
                JsonValue::Array(
                    self.window_match_stats
                        .iter()
                        .map(match_stats_json)
                        .collect(),
                ),
            ),
            (
                "window_unmatched".into(),
                JsonValue::Array(
                    self.window_unmatched
                        .iter()
                        .map(|w| {
                            JsonValue::Object(vec![
                                ("lines".into(), num(w.lines)),
                                ("unmatched".into(), num(w.unmatched)),
                                (
                                    "unmatched_rate".into(),
                                    JsonValue::Number(w.unmatched_rate()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a report back from JSON.  The fault-tolerance fields are optional so reports
    /// written by earlier versions still parse (they default to zero / absent).
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let v = JsonValue::parse(text)?;
        let opt_usize = |key: &str| -> Result<usize, JsonError> {
            v.get(key).map_or(Ok(0), JsonValue::as_usize)
        };
        let stopped_reason = match v.get("stopped_reason") {
            None | Some(JsonValue::Null) => None,
            Some(other) => Some(other.as_str()?.to_string()),
        };
        Ok(StreamReport {
            records: v.require("records")?.as_usize()?,
            noise_lines: v.require("noise_lines")?.as_usize()?,
            bytes_processed: v.require("bytes_processed")?.as_usize()?,
            lines_processed: v.require("lines_processed")?.as_usize()?,
            windows: v.require("windows")?.as_usize()?,
            peak_window_bytes: v.require("peak_window_bytes")?.as_usize()?,
            sink_seconds: v.require("sink_seconds")?.as_f64()?,
            match_seconds: v.get("match_seconds").map_or(Ok(0.0), JsonValue::as_f64)?,
            quarantined_lines: opt_usize("quarantined_lines")?,
            invalid_utf8_lines: opt_usize("invalid_utf8_lines")?,
            oversized_lines: opt_usize("oversized_lines")?,
            stopped_reason,
            templates: string_vec(v.require("templates")?)?,
            match_stats: v
                .get("match_stats")
                .map_or(Ok(MatchStats::default()), match_stats_from_json)?,
            window_match_stats: match v.get("window_match_stats") {
                None | Some(JsonValue::Null) => Vec::new(),
                Some(JsonValue::Array(items)) => items
                    .iter()
                    .map(match_stats_from_json)
                    .collect::<Result<_, _>>()?,
                Some(_) => {
                    return Err(JsonError::shape("window_match_stats must be an array"));
                }
            },
            window_unmatched: match v.get("window_unmatched") {
                None | Some(JsonValue::Null) => Vec::new(),
                Some(JsonValue::Array(items)) => items
                    .iter()
                    .map(|w| {
                        Ok(WindowUnmatched {
                            lines: w.require("lines")?.as_usize()?,
                            unmatched: w.require("unmatched")?.as_usize()?,
                        })
                    })
                    .collect::<Result<_, JsonError>>()?,
                Some(_) => {
                    return Err(JsonError::shape("window_unmatched must be an array"));
                }
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Datamaran;

    fn sample_log() -> String {
        let mut s = String::new();
        for i in 0..80 {
            s.push_str(&format!(
                "[{:02}:{:02}] 10.0.{}.{} GET /p{}\n",
                i % 24,
                i % 60,
                i % 8,
                (i * 3) % 250,
                i % 7
            ));
        }
        s
    }

    #[test]
    fn report_summarizes_extraction() {
        let text = sample_log();
        let result = Datamaran::with_defaults().extract(&text).unwrap();
        let report = ExtractionReport::new(&text, &result);
        assert_eq!(report.dataset_bytes, text.len());
        assert_eq!(report.record_count, 80);
        assert_eq!(report.structures.len(), 1);
        let s = &report.structures[0];
        assert!(s.field_count >= 6);
        assert_eq!(s.column_types.len(), s.field_count);
        assert_eq!(s.semantics.columns.len(), s.field_count);
        assert!(!s.tables.is_empty());
        assert!(report.stats.step_seconds.iter().all(|x| *x >= 0.0));
    }

    #[test]
    fn report_json_round_trips() {
        let text = sample_log();
        let result = Datamaran::with_defaults().extract(&text).unwrap();
        let report = ExtractionReport::new(&text, &result);
        let json = report.to_json();
        assert!(json.contains("\"template\""));
        let back = ExtractionReport::from_json(&json).unwrap();
        // Compare the structural content; exact float equality is not what the format
        // guarantees (timings are environment-dependent anyway).
        assert_eq!(back.dataset_bytes, report.dataset_bytes);
        assert_eq!(back.record_count, report.record_count);
        assert_eq!(back.noise_lines, report.noise_lines);
        assert_eq!(back.structures.len(), report.structures.len());
        for (a, b) in back.structures.iter().zip(&report.structures) {
            assert_eq!(a.template, b.template);
            assert_eq!(a.field_count, b.field_count);
            assert_eq!(a.record_count, b.record_count);
            assert_eq!(a.column_types, b.column_types);
            assert_eq!(a.tables, b.tables);
        }
        assert_eq!(back.stats.iterations, report.stats.iterations);
        assert_eq!(back.stats.evaluation_backend, "span");
        assert_eq!(back.stats.evaluation_count, report.stats.evaluation_count);
        assert_eq!(
            back.stats.evaluation_memo_hits,
            report.stats.evaluation_memo_hits
        );
        assert!(back.stats.evaluation_parse_seconds >= 0.0);
        assert!(back.stats.evaluation_score_seconds >= 0.0);
    }

    #[test]
    fn csv_quoting_handles_special_characters() {
        assert_eq!(csv_quote("plain"), "plain");
        assert_eq!(csv_quote("a,b"), "\"a,b\"");
        assert_eq!(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_quote("two\nlines"), "\"two\nlines\"");
        assert_eq!(csv_quote(""), "");
    }

    #[test]
    fn table_to_csv_emits_header_and_rows() {
        let t = Table::from_strings(
            "t",
            vec!["id".into(), "msg".into()],
            vec![
                vec!["0".into(), "hello".into()],
                vec!["1".into(), "a,b".into()],
            ],
        );
        let csv = table_to_csv(&t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["id,msg", "0,hello", "1,\"a,b\""]);
    }

    #[test]
    fn span_backed_cells_serialize_identically_to_owned_cells() {
        use crate::relational::Cell;
        use std::sync::Arc;
        let source: Arc<str> = Arc::from("alpha,beta\n");
        let mut spans = Table::new("t", vec!["a".into(), "b".into()], Arc::clone(&source));
        spans.push_row(vec![
            Cell::Span { start: 0, end: 5 },
            Cell::Span { start: 6, end: 10 },
        ]);
        let owned = Table::from_strings(
            "t",
            vec!["a".into(), "b".into()],
            vec![vec!["alpha".into(), "beta".into()]],
        );
        assert_eq!(table_to_csv(&spans), table_to_csv(&owned));
    }

    #[test]
    fn write_table_csv_writes_to_sink() {
        let t = Table::from_strings("t", vec!["x".into()], vec![vec!["1".into()]]);
        let mut buf = Vec::new();
        write_table_csv(&t, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "x\n1\n");
    }

    #[test]
    fn jsonl_record_format_is_stable_and_escaped() {
        let mut out = String::new();
        push_jsonl_record(
            &mut out,
            1,
            (3, 5),
            [vec!["a"], vec!["x", "y\"z\n"]]
                .iter()
                .map(|c| c.iter().copied()),
        );
        assert_eq!(
            out,
            "{\"type\":1,\"lines\":[3,5],\"columns\":[[\"a\"],[\"x\",\"y\\\"z\\n\"]]}\n"
        );
    }

    #[test]
    fn stream_report_round_trips() {
        let report = StreamReport {
            records: 12,
            noise_lines: 3,
            bytes_processed: 4096,
            lines_processed: 15,
            windows: 4,
            peak_window_bytes: 2048,
            sink_seconds: 0.25,
            match_seconds: 0.5,
            quarantined_lines: 2,
            invalid_utf8_lines: 1,
            oversized_lines: 1,
            stopped_reason: Some("window-bytes".into()),
            templates: vec!["F=F\\n".into()],
            match_stats: MatchStats {
                lines_dispatched: 15,
                fused_dispatches: 15,
                templates_trialed: 18,
                templates_pruned: 27,
            },
            window_match_stats: vec![
                MatchStats {
                    lines_dispatched: 8,
                    fused_dispatches: 8,
                    templates_trialed: 10,
                    templates_pruned: 14,
                },
                MatchStats {
                    lines_dispatched: 7,
                    fused_dispatches: 7,
                    templates_trialed: 8,
                    templates_pruned: 13,
                },
            ],
            window_unmatched: vec![
                WindowUnmatched {
                    lines: 8,
                    unmatched: 2,
                },
                WindowUnmatched {
                    lines: 7,
                    unmatched: 1,
                },
            ],
        };
        let back = StreamReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    /// Reports written before the fault-tolerance fields existed must still parse.
    #[test]
    fn stream_report_parses_legacy_json_without_fault_fields() {
        let legacy = r#"{
            "records": 5, "noise_lines": 1, "bytes_processed": 100,
            "lines_processed": 6, "windows": 2, "peak_window_bytes": 64,
            "sink_seconds": 0.5, "templates": ["F\n"]
        }"#;
        let report = StreamReport::from_json(legacy).unwrap();
        assert_eq!(report.records, 5);
        assert_eq!(report.quarantined_lines, 0);
        assert_eq!(report.invalid_utf8_lines, 0);
        assert_eq!(report.oversized_lines, 0);
        assert_eq!(report.stopped_reason, None);
        assert_eq!(report.match_stats, MatchStats::default());
        assert!(report.window_match_stats.is_empty());
        assert_eq!(report.match_seconds, 0.0);
        assert!(report.window_unmatched.is_empty());
    }

    #[test]
    fn streaming_sinks_match_materialized_serializers() {
        use crate::streaming::{StreamOptions, StreamSession};
        use std::io::Cursor;
        let text = sample_log();
        let engine = Datamaran::with_defaults();
        let result = engine.extract(&text).unwrap();

        let mut sink = Tee(
            CsvSink::new(|_name: &str| Ok(Vec::<u8>::new())),
            Tee(
                JsonLinesSink::new(Vec::<u8>::new()),
                CountingSink::default(),
            ),
        );
        let summary = StreamSession::new(&engine)
            .options(StreamOptions {
                head_bytes: 512,
                window_bytes: 256,
                ..StreamOptions::default()
            })
            .run(Cursor::new(text.clone()), &mut sink)
            .unwrap();
        let Tee(csv, Tee(jsonl, counter)) = sink;
        assert_eq!(counter.records, result.record_count());
        assert_eq!(counter.per_template, vec![result.record_count()]);
        assert_eq!(summary.records, counter.records);

        // CSV: byte-identical to the materialized normalized tables.
        let streamed = csv.into_writers();
        let materialized: Vec<(&str, String)> = result
            .structures
            .iter()
            .flat_map(|s| s.relational.tables.iter())
            .map(|t| (t.name.as_str(), table_to_csv(t)))
            .collect();
        assert_eq!(streamed.len(), materialized.len());
        for ((name, bytes), (expected_name, expected)) in streamed.iter().zip(&materialized) {
            assert_eq!(name, expected_name);
            assert_eq!(std::str::from_utf8(bytes).unwrap(), expected, "{name}");
        }

        // JSON Lines: byte-identical to the materialized serializer.
        let jsonl_bytes = jsonl.into_writer();
        assert_eq!(
            String::from_utf8(jsonl_bytes).unwrap(),
            all_records_jsonl(&text, &result)
        );
    }

    #[test]
    fn csv_sink_refuses_reuse_across_streams() {
        use crate::streaming::StreamSession;
        use std::io::Cursor;
        let text = sample_log();
        let engine = Datamaran::with_defaults();
        let mut sink = CsvSink::new(|_name: &str| Ok(Vec::<u8>::new()));
        StreamSession::new(&engine)
            .run(Cursor::new(text.clone()), &mut sink)
            .unwrap();
        // Driving the same sink for a second stream would truncate the first stream's
        // files and restart the row ids — it must fail loudly instead.
        let err = StreamSession::new(&engine)
            .run(Cursor::new(text), &mut sink)
            .unwrap_err();
        assert!(
            matches!(err, crate::error::Error::InvalidConfig(_)),
            "{err}"
        );
    }

    #[test]
    fn all_tables_csv_covers_every_table() {
        let text = sample_log();
        let result = Datamaran::with_defaults().extract(&text).unwrap();
        let tables = all_tables_csv(&result);
        let total: usize = result
            .structures
            .iter()
            .map(|s| s.relational.tables.len())
            .sum();
        assert_eq!(tables.len(), total);
        assert!(tables[0].1.lines().count() > 80);
    }
}
