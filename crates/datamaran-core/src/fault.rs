//! Fault-injection primitives for testing the pipeline's failure semantics.
//!
//! The robustness claims of the streaming layer (no panic on hostile input, graceful
//! degradation, retry on transient sink failures, truthful durable-write reporting) are
//! only as good as the faults they are tested against.  This module provides the two
//! injection points the integration suite drives:
//!
//! * [`FailingReader`] — wraps any [`BufRead`] and injects I/O errors into the *input*
//!   side according to a [`FaultSchedule`];
//! * [`FailingSink`] — wraps any [`RecordSink`] and injects errors into the *output* side,
//!   failing **before** delegating so the inner sink's durable state stays truthful;
//! * [`FailingJournalDir`] — hands out [`crate::journal::JournalMedia`]
//!   instances with a byte budget, so journal appends run out of disk (and leave a real
//!   **torn prefix** behind) at an exact byte `k` — the crash/chaos harness's storage
//!   model.
//!
//! Transient faults surface as [`io::ErrorKind::TimedOut`] (which
//! [`Error::is_transient`](crate::error::Error::is_transient) classifies as retryable);
//! permanent faults as [`io::ErrorKind::Other`].

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::error::{Error, Result};
use crate::export::RecordSink;
use crate::journal::{JournalMedia, MemJournalMedia};
use crate::streaming::StreamRecord;
use crate::structure::StructureTemplate;
use std::io::{self, BufRead, Read};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// When injected faults fire, as a function of the operation count and delivered bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSchedule {
    /// Permanently fail from the `n`-th operation (0-based) onward.
    FailNth(usize),
    /// Permanently fail every operation once `bytes` total bytes have been delivered.
    FailAfterBytes(usize),
    /// Fail `failures` consecutive operations starting at the `at`-th with **transient**
    /// errors, then succeed again — the retry-layer test case.
    Transient {
        /// First failing operation (0-based).
        at: usize,
        /// Number of consecutive failures.
        failures: usize,
    },
}

impl FaultSchedule {
    /// Whether operation number `op` fails given `bytes` already delivered, and the error
    /// to fail with.
    fn fault(&self, op: usize, bytes: usize) -> Option<io::Error> {
        let fails = match *self {
            FaultSchedule::FailNth(n) => op >= n,
            FaultSchedule::FailAfterBytes(b) => bytes >= b,
            FaultSchedule::Transient { at, failures } => op >= at && op < at + failures,
        };
        if !fails {
            return None;
        }
        Some(match self {
            FaultSchedule::Transient { .. } => {
                io::Error::new(io::ErrorKind::TimedOut, "injected transient fault")
            }
            _ => io::Error::other("injected fault"),
        })
    }
}

/// A [`BufRead`] wrapper that injects I/O errors into `fill_buf` per a [`FaultSchedule`].
/// Operations are `fill_buf` calls; delivered bytes are counted at `consume`.
pub struct FailingReader<R> {
    inner: R,
    schedule: FaultSchedule,
    ops: usize,
    bytes: usize,
}

impl<R: BufRead> FailingReader<R> {
    /// Wraps `inner` with the given schedule.
    pub fn new(inner: R, schedule: FaultSchedule) -> Self {
        FailingReader {
            inner,
            schedule,
            ops: 0,
            bytes: 0,
        }
    }

    /// Bytes delivered to the consumer so far.
    pub fn bytes_delivered(&self) -> usize {
        self.bytes
    }
}

impl<R: BufRead> Read for FailingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let available = self.fill_buf()?;
        let n = available.len().min(buf.len());
        buf[..n].copy_from_slice(&available[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl<R: BufRead> BufRead for FailingReader<R> {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        let op = self.ops;
        self.ops += 1;
        if let Some(e) = self.schedule.fault(op, self.bytes) {
            return Err(e);
        }
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        self.bytes += amt;
        self.inner.consume(amt);
    }
}

/// A [`RecordSink`] wrapper that injects failures into `record` (per a [`FaultSchedule`];
/// operations are `record` calls, delivered bytes are the records' summed cell bytes) and
/// optionally into the first `finish_failures` calls of `finish` (transient).  Faults fire
/// **before** delegating, so the inner sink never sees the failed call — whatever durable
/// counts it reports stay truthful.
pub struct FailingSink<S> {
    inner: S,
    schedule: Option<FaultSchedule>,
    finish_failures: usize,
    record_ops: usize,
    finish_ops: usize,
    bytes: usize,
    /// Records successfully delegated to the inner sink.
    pub delivered: usize,
}

impl<S: RecordSink> FailingSink<S> {
    /// Wraps `inner`, injecting `schedule` into `record` calls.
    pub fn new(inner: S, schedule: FaultSchedule) -> Self {
        FailingSink {
            inner,
            schedule: Some(schedule),
            finish_failures: 0,
            record_ops: 0,
            finish_ops: 0,
            bytes: 0,
            delivered: 0,
        }
    }

    /// Wraps `inner` with no record faults (combine with
    /// [`with_finish_failures`](Self::with_finish_failures)).
    pub fn passthrough(inner: S) -> Self {
        FailingSink {
            inner,
            schedule: None,
            finish_failures: 0,
            record_ops: 0,
            finish_ops: 0,
            bytes: 0,
            delivered: 0,
        }
    }

    /// Makes the first `n` calls of `finish` fail transiently before delegating.
    pub fn with_finish_failures(mut self, n: usize) -> Self {
        self.finish_failures = n;
        self
    }

    /// Consumes the wrapper, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Direct access to the inner sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: RecordSink> RecordSink for FailingSink<S> {
    fn begin(&mut self, templates: &[StructureTemplate]) -> Result<()> {
        self.inner.begin(templates)
    }

    fn record(&mut self, record: &StreamRecord<'_>) -> Result<()> {
        let op = self.record_ops;
        self.record_ops += 1;
        if let Some(schedule) = &self.schedule {
            if let Some(e) = schedule.fault(op, self.bytes) {
                return Err(Error::io(&e).in_sink("failing"));
            }
        }
        self.bytes += record
            .cells
            .iter()
            .map(|c| c.end.saturating_sub(c.start))
            .sum::<usize>();
        self.inner.record(record)?;
        self.delivered += 1;
        Ok(())
    }

    fn finish(&mut self) -> Result<()> {
        let op = self.finish_ops;
        self.finish_ops += 1;
        if op < self.finish_failures {
            let e = io::Error::new(io::ErrorKind::TimedOut, "injected transient finish fault");
            return Err(Error::io(&e).in_sink("failing"));
        }
        self.inner.finish()
    }
}

/// A "directory" on failing storage: every [`JournalMedia`] it hands out shares one byte
/// budget, and an append that would exceed the budget writes only the bytes that fit —
/// a **torn prefix** — before failing with a disk-full error.  Setting the budget to
/// `magic + k` tears the first journal entry at exactly byte `k`; setting it to the
/// current length makes every further append fail cleanly (classic disk-full).
pub struct FailingJournalDir {
    remaining: Arc<AtomicU64>,
}

impl FailingJournalDir {
    /// A directory that accepts `budget_bytes` in total across all media it hands out.
    pub fn with_budget(budget_bytes: u64) -> Self {
        FailingJournalDir {
            remaining: Arc::new(AtomicU64::new(budget_bytes)),
        }
    }

    /// Bytes the directory will still accept.
    pub fn remaining(&self) -> u64 {
        self.remaining.load(Ordering::Relaxed)
    }

    /// Grants `bytes` more budget (the operator freed disk space).
    pub fn grow(&self, bytes: u64) {
        self.remaining.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Opens a new in-memory journal medium charged against the shared budget.  The
    /// returned handle exposes the raw bytes (including any torn prefix) via
    /// [`BudgetedJournalMedia::bytes`].
    pub fn open(&self) -> BudgetedJournalMedia {
        BudgetedJournalMedia {
            inner: MemJournalMedia::default(),
            remaining: self.remaining.clone(),
        }
    }
}

/// A [`JournalMedia`] whose appends draw from a [`FailingJournalDir`] budget; the append
/// that exhausts it leaves a torn prefix and returns a disk-full error.  Truncation
/// refunds the freed bytes.
pub struct BudgetedJournalMedia {
    inner: MemJournalMedia,
    remaining: Arc<AtomicU64>,
}

impl BudgetedJournalMedia {
    /// The bytes on the medium, torn prefix included.
    pub fn bytes(&self) -> Vec<u8> {
        self.inner.bytes()
    }

    /// A second handle onto the same bytes (give one to the journal, keep one to inspect).
    pub fn handle(&self) -> BudgetedJournalMedia {
        BudgetedJournalMedia {
            inner: self.inner.clone(),
            remaining: self.remaining.clone(),
        }
    }
}

impl JournalMedia for BudgetedJournalMedia {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let want = bytes.len() as u64;
        // Claim what fits: a compare-exchange loop so concurrent media share the budget
        // without double-spending.
        let granted = loop {
            let have = self.remaining.load(Ordering::Relaxed);
            let grant = have.min(want);
            if self
                .remaining
                .compare_exchange(have, have - grant, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                break grant;
            }
        };
        if granted > 0 {
            self.inner.append(&bytes[..granted as usize])?;
        }
        if granted < want {
            return Err(io::Error::new(
                io::ErrorKind::QuotaExceeded,
                format!("injected disk full: {granted} of {want} bytes written (torn prefix)"),
            ));
        }
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.inner.sync()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let before = self.inner.len()?;
        self.inner.truncate(len)?;
        let after = self.inner.len()?;
        self.remaining
            .fetch_add(before.saturating_sub(after), Ordering::Relaxed);
        Ok(())
    }

    fn len(&mut self) -> io::Result<u64> {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::CountingSink;
    use std::io::Cursor;

    #[test]
    fn fail_nth_reader_fails_permanently_from_n() {
        let mut r = FailingReader::new(Cursor::new(b"abcdef".to_vec()), FaultSchedule::FailNth(1));
        let mut buf = [0u8; 3];
        assert_eq!(r.read(&mut buf).unwrap(), 3);
        assert!(r.read(&mut buf).is_err());
        assert!(r.read(&mut buf).is_err(), "permanent from n onward");
    }

    #[test]
    fn fail_after_bytes_reader_counts_consumed_bytes() {
        let mut r = FailingReader::new(
            Cursor::new(b"abcdefgh".to_vec()),
            FaultSchedule::FailAfterBytes(4),
        );
        let mut buf = [0u8; 2];
        assert_eq!(r.read(&mut buf).unwrap(), 2);
        assert_eq!(r.read(&mut buf).unwrap(), 2);
        assert_eq!(r.bytes_delivered(), 4);
        let err = r.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
    }

    #[test]
    fn transient_reader_recovers_after_the_failure_window() {
        let mut r = FailingReader::new(
            Cursor::new(b"abcd".to_vec()),
            FaultSchedule::Transient { at: 1, failures: 2 },
        );
        let mut buf = [0u8; 2];
        assert_eq!(r.read(&mut buf).unwrap(), 2);
        assert_eq!(
            r.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::TimedOut
        );
        assert_eq!(
            r.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::TimedOut
        );
        assert_eq!(r.read(&mut buf).unwrap(), 2, "recovers");
    }

    #[test]
    fn failing_sink_faults_before_delegating() {
        let mut sink = FailingSink::new(CountingSink::default(), FaultSchedule::FailNth(0));
        sink.begin(&[]).unwrap();
        let rec = StreamRecord {
            template_index: 0,
            line_span: (0, 1),
            window: "x\n",
            cells: &[],
            reps: &[],
        };
        let err = sink.record(&rec).unwrap_err();
        assert!(matches!(err, Error::Sink { .. }), "{err:?}");
        assert_eq!(sink.delivered, 0);
        assert_eq!(sink.inner().records, 0, "inner sink never saw the record");
    }

    #[test]
    fn finish_failures_are_transient() {
        let mut sink = FailingSink::passthrough(CountingSink::default()).with_finish_failures(2);
        assert!(sink.finish().unwrap_err().is_transient());
        assert!(sink.finish().unwrap_err().is_transient());
        sink.finish().unwrap();
    }

    #[test]
    fn budgeted_media_tears_the_append_that_exhausts_the_budget() {
        let dir = FailingJournalDir::with_budget(10);
        let mut media = dir.open();
        let inspect = media.handle();
        media.append(b"abcdef").unwrap();
        // 4 bytes of budget remain: a 6-byte append writes a 4-byte torn prefix and fails.
        let err = media.append(b"ghijkl").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::QuotaExceeded);
        assert_eq!(inspect.bytes(), b"abcdefghij");
        assert_eq!(dir.remaining(), 0);
        // Still out of budget: even one byte fails (nothing written).
        assert!(media.append(b"z").is_err());
        assert_eq!(inspect.bytes().len(), 10);
    }

    #[test]
    fn budgeted_media_refunds_truncated_bytes_and_grows() {
        let dir = FailingJournalDir::with_budget(8);
        let mut media = dir.open();
        media.append(b"12345678").unwrap();
        assert_eq!(dir.remaining(), 0);
        media.truncate(3).unwrap();
        assert_eq!(dir.remaining(), 5);
        media.append(b"abcde").unwrap();
        assert_eq!(media.bytes(), b"123abcde");
        dir.grow(2);
        media.append(b"xy").unwrap();
        assert_eq!(media.bytes(), b"123abcdexy");
    }
}
