//! Field value data types used by the MDL regularity score (Appendix 9.2).
//!
//! Each field (column) of a structure template is assigned one of four value types —
//! enumerated, integer, real, or string — by inspecting the values extracted for it.  The
//! type determines how many bits the MDL score charges per value.

use std::collections::HashSet;

/// The data type inferred for a field (column), with the parameters needed to compute
/// description lengths.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldType {
    /// A small closed set of `n_values` distinct strings.
    Enumerated {
        /// Number of distinct values observed.
        n_values: usize,
    },
    /// Integers in `[min, max]`.
    Integer {
        /// Smallest observed value.
        min: i64,
        /// Largest observed value.
        max: i64,
    },
    /// Reals in `[min, max]` with at most `exp` digits after the decimal point.
    Real {
        /// Smallest observed value.
        min: f64,
        /// Largest observed value.
        max: f64,
        /// Maximum number of digits after the decimal point.
        exp: u32,
    },
    /// Free text: described character by character.
    String,
}

impl FieldType {
    /// Number of bits needed to describe one value of this type (Appendix 9.2).
    pub fn bits_per_value(&self, value: &str) -> f64 {
        match self {
            FieldType::Enumerated { n_values } => {
                ((*n_values).max(1) as f64).log2().ceil().max(1.0)
            }
            FieldType::Integer { min, max } => {
                let range = (max - min + 1).max(1) as f64;
                range.log2().ceil().max(1.0)
            }
            FieldType::Real { min, max, exp } => {
                let range = ((max - min) * 10f64.powi(*exp as i32) + 1.0).max(1.0);
                range.log2().ceil().max(1.0)
            }
            FieldType::String => (value.len() as f64 + 1.0) * 8.0,
        }
    }

    /// Number of bits needed to describe the *model parameters* of this column type: the
    /// dictionary of an enumerated column, the `[min, max]` bounds of a numeric column.
    ///
    /// Charging for the model is essential: without it, a template that funnels many distinct
    /// strings into one "enumerated" column would be priced at `log2(n)` bits per value while
    /// hiding the cost of the dictionary itself, and the MDL comparison would favour
    /// degenerate templates.
    pub fn model_bits(&self, values: &[&str]) -> f64 {
        match self {
            FieldType::Enumerated { .. } => {
                let distinct: HashSet<&str> = values.iter().copied().collect();
                distinct.iter().map(|v| (v.len() as f64 + 1.0) * 8.0).sum()
            }
            FieldType::Integer { .. } => 64.0,
            FieldType::Real { .. } => 72.0,
            FieldType::String => 8.0,
        }
    }

    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            FieldType::Enumerated { .. } => "enum",
            FieldType::Integer { .. } => "int",
            FieldType::Real { .. } => "real",
            FieldType::String => "string",
        }
    }
}

/// Parses a string as a plain (decimal, optionally signed) integer.
pub fn parse_integer(s: &str) -> Option<i64> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let body = s.strip_prefix('-').unwrap_or(s);
    if body.is_empty() || !body.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse::<i64>().ok()
}

/// Parses a string as a decimal real number, returning the value and the number of digits
/// after the decimal point.
pub fn parse_real(s: &str) -> Option<(f64, u32)> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let body = s.strip_prefix('-').unwrap_or(s);
    let mut parts = body.splitn(2, '.');
    let int_part = parts.next()?;
    let frac_part = parts.next().unwrap_or("");
    if int_part.is_empty() && frac_part.is_empty() {
        return None;
    }
    if !int_part.bytes().all(|b| b.is_ascii_digit())
        || !frac_part.bytes().all(|b| b.is_ascii_digit())
    {
        return None;
    }
    let value: f64 = s.parse().ok()?;
    Some((value, frac_part.len() as u32))
}

/// Infers the [`FieldType`] of a column from its observed values.
///
/// The decision order follows Appendix 9.2: integers, then reals, then a small enumerated
/// vocabulary, and finally free text.
pub fn infer(values: &[&str]) -> FieldType {
    if values.is_empty() {
        return FieldType::String;
    }

    // Integer?
    if values.iter().all(|v| parse_integer(v).is_some()) {
        let parsed: Vec<i64> = values.iter().filter_map(|v| parse_integer(v)).collect();
        let min = parsed.iter().copied().min().unwrap_or(0);
        let max = parsed.iter().copied().max().unwrap_or(0);
        return FieldType::Integer { min, max };
    }

    // Real?
    if values.iter().all(|v| parse_real(v).is_some()) {
        let parsed: Vec<(f64, u32)> = values.iter().filter_map(|v| parse_real(v)).collect();
        let min = parsed.iter().map(|(v, _)| *v).fold(f64::INFINITY, f64::min);
        let max = parsed
            .iter()
            .map(|(v, _)| *v)
            .fold(f64::NEG_INFINITY, f64::max);
        let exp = parsed.iter().map(|(_, e)| *e).max().unwrap_or(0);
        return FieldType::Real { min, max, exp };
    }

    // Enumerated vs free text: choose whichever yields the shorter total description
    // (dictionary plus per-value index bits for the enumeration, raw characters for text).
    // A hard distinct-count threshold would create a cliff that rewards templates for
    // artificially splitting one logical column into several smaller ones.
    let distinct: HashSet<&str> = values.iter().copied().collect();
    if distinct.len() < values.len() {
        let dict_bits: f64 = distinct.iter().map(|v| (v.len() as f64 + 1.0) * 8.0).sum();
        let index_bits = (distinct.len().max(1) as f64).log2().ceil().max(1.0);
        let enum_cost = dict_bits + values.len() as f64 * index_bits;
        let string_cost: f64 = values.iter().map(|v| (v.len() as f64 + 1.0) * 8.0).sum();
        if enum_cost < string_cost {
            return FieldType::Enumerated {
                n_values: distinct.len(),
            };
        }
    }

    FieldType::String
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infers_integer_columns() {
        let t = infer(&["1", "42", "-7", "100"]);
        assert_eq!(t, FieldType::Integer { min: -7, max: 100 });
        assert_eq!(t.name(), "int");
    }

    #[test]
    fn infers_real_columns() {
        let t = infer(&["1.5", "2.25", "0.1"]);
        match t {
            FieldType::Real { min, max, exp } => {
                assert!((min - 0.1).abs() < 1e-9);
                assert!((max - 2.25).abs() < 1e-9);
                assert_eq!(exp, 2);
            }
            other => panic!("expected real, got {other:?}"),
        }
    }

    #[test]
    fn integers_are_not_classified_as_reals() {
        assert!(matches!(infer(&["1", "2", "3"]), FieldType::Integer { .. }));
    }

    #[test]
    fn infers_enumerated_columns() {
        let values = [
            "INFO", "WARN", "INFO", "ERROR", "INFO", "WARN", "INFO", "INFO",
        ];
        let t = infer(&values);
        assert_eq!(t, FieldType::Enumerated { n_values: 3 });
    }

    #[test]
    fn unique_text_is_string_not_enum() {
        let values = ["alpha", "beta", "gamma", "delta"];
        assert_eq!(infer(&values), FieldType::String);
    }

    #[test]
    fn empty_column_defaults_to_string() {
        assert_eq!(infer(&[]), FieldType::String);
    }

    #[test]
    fn bits_per_value_for_each_type() {
        assert_eq!(
            FieldType::Integer { min: 0, max: 255 }.bits_per_value("17"),
            8.0
        );
        assert_eq!(
            FieldType::Enumerated { n_values: 4 }.bits_per_value("x"),
            2.0
        );
        assert_eq!(FieldType::String.bits_per_value("abc"), 32.0);
        let real = FieldType::Real {
            min: 0.0,
            max: 1.0,
            exp: 2,
        };
        assert!(real.bits_per_value("0.5") >= 6.0);
    }

    #[test]
    fn parse_integer_rejects_garbage() {
        assert_eq!(parse_integer("12a"), None);
        assert_eq!(parse_integer(""), None);
        assert_eq!(parse_integer("-"), None);
        assert_eq!(parse_integer("1.5"), None);
        assert_eq!(parse_integer("-12"), Some(-12));
    }

    #[test]
    fn parse_real_handles_fraction_digits() {
        assert_eq!(parse_real("8.25"), Some((8.25, 2)));
        assert_eq!(parse_real("10"), Some((10.0, 0)));
        assert_eq!(parse_real("1.2.3"), None);
        assert_eq!(parse_real("abc"), None);
    }

    #[test]
    fn mixed_numeric_and_text_is_string_or_enum() {
        let values = ["1", "2", "abc", "1", "2", "abc", "1", "1"];
        // Not all integers, not all reals, few distinct values that repeat a lot -> enum.
        assert_eq!(infer(&values), FieldType::Enumerated { n_values: 3 });
    }
}
