//! Versioned, serializable artifacts for discovered template sets.
//!
//! Discovery and extraction are separate lifecycle phases for a resident ingest service:
//! `discover` runs the full pipeline once and saves the winning [`StructureTemplate`]s;
//! `serve` loads them and matches forever, with **zero** discovery on the hot path.  The
//! artifact is the hand-off between the two (and the unit of fleet-wide template
//! distribution): a single JSON document, written with the in-tree [`crate::json`] module,
//! carrying
//!
//! * a format tag and **format version** (`datamaran-templates`, version 1), so future
//!   encodings can evolve without silently misreading old files;
//! * an FNV-1a 64 **checksum** over the templates' canonical strings plus the compiled-set
//!   metadata, so truncated or hand-edited artifacts fail loudly at load time instead of
//!   serving wrong rows;
//! * the template trees themselves (fields, literals, arrays), plus per-template
//!   `field_count` / `array_count` cross-checks;
//! * the compiled-set metadata the serving matcher needs: the engine's `max_line_span`
//!   and the [`MatchingBackend`] the set was validated under.
//!
//! Loading re-parses the trees and **recompiles** the matcher tables from them (via
//! [`SpanLineMatcher`]), so a loaded artifact behaves byte-identically to the freshly
//! discovered set — the compile/decompile round-trip is property-tested in
//! `tests/serve_hotswap.rs`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::config::MatchingBackend;
use crate::error::{Error, Result};
use crate::extract::SpanLineMatcher;
use crate::json::JsonValue;
use crate::structure::{Node, StructureTemplate};
use std::path::Path;

/// The format tag every artifact starts with.
pub const ARTIFACT_FORMAT: &str = "datamaran-templates";

/// The newest format version this build reads and writes.
pub const ARTIFACT_VERSION: u64 = 1;

/// A saved template set: everything `serve` needs to match a stream without re-running
/// discovery.
#[derive(Clone, Debug, PartialEq)]
pub struct TemplateArtifact {
    /// The structure templates, in match-priority order.
    pub templates: Vec<StructureTemplate>,
    /// The `max_line_span` (`L`) the templates were discovered under — the serving matcher
    /// must use the same bound or record segmentation changes.
    pub max_line_span: usize,
    /// The matching backend the set was validated under.
    pub matching_backend: MatchingBackend,
}

impl TemplateArtifact {
    /// Builds an artifact from a discovered template set.  Empty sets are rejected: an
    /// artifact with nothing to match can never serve.
    pub fn new(
        templates: Vec<StructureTemplate>,
        max_line_span: usize,
        matching_backend: MatchingBackend,
    ) -> Result<Self> {
        if templates.is_empty() {
            return Err(Error::Artifact("template set is empty".into()));
        }
        if max_line_span == 0 {
            return Err(Error::Artifact("max_line_span must be >= 1".into()));
        }
        Ok(TemplateArtifact {
            templates,
            max_line_span,
            matching_backend,
        })
    }

    /// The artifact's integrity checksum: FNV-1a 64 over the canonical strings of the
    /// templates (joined with `\x00`) plus the compiled-set metadata.  Canonical strings
    /// are injective over template trees, so any structural change to any template changes
    /// the checksum.
    pub fn checksum(&self) -> u64 {
        let mut hash = FNV_OFFSET;
        for t in &self.templates {
            hash = fnv1a64(hash, t.canonical_string().as_bytes());
            hash = fnv1a64(hash, &[0]);
        }
        hash = fnv1a64(hash, &(self.max_line_span as u64).to_le_bytes());
        hash = fnv1a64(hash, self.matching_backend.name().as_bytes());
        hash
    }

    /// Serializes the artifact to its JSON document.
    pub fn to_json(&self) -> String {
        let templates: Vec<JsonValue> = self
            .templates
            .iter()
            .map(|t| {
                JsonValue::Object(vec![
                    (
                        "nodes".into(),
                        JsonValue::Array(t.nodes().iter().map(node_to_json).collect()),
                    ),
                    ("display".into(), JsonValue::String(t.to_string())),
                    (
                        "field_count".into(),
                        JsonValue::Number(t.field_count() as f64),
                    ),
                    (
                        "array_count".into(),
                        JsonValue::Number(t.array_count() as f64),
                    ),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            ("format".into(), JsonValue::String(ARTIFACT_FORMAT.into())),
            ("version".into(), JsonValue::Number(ARTIFACT_VERSION as f64)),
            (
                "checksum".into(),
                JsonValue::String(format!("{:016x}", self.checksum())),
            ),
            (
                "max_line_span".into(),
                JsonValue::Number(self.max_line_span as f64),
            ),
            (
                "matching_backend".into(),
                JsonValue::String(self.matching_backend.name().into()),
            ),
            ("templates".into(), JsonValue::Array(templates)),
        ])
        .to_pretty()
    }

    /// Parses and verifies an artifact document: format tag, version, checksum, and the
    /// per-template `field_count` / `array_count` cross-checks must all hold.
    pub fn from_json(text: &str) -> Result<Self> {
        let doc = JsonValue::parse(text)
            .map_err(|e| Error::Artifact(format!("not valid JSON: {e:?}")))?;
        let format = doc
            .require("format")
            .and_then(JsonValue::as_str)
            .map_err(|e| Error::Artifact(format!("{e:?}")))?;
        if format != ARTIFACT_FORMAT {
            return Err(Error::Artifact(format!(
                "unknown format tag `{format}` (expected `{ARTIFACT_FORMAT}`)"
            )));
        }
        let version = doc
            .require("version")
            .and_then(JsonValue::as_usize)
            .map_err(|e| Error::Artifact(format!("{e:?}")))? as u64;
        if version == 0 || version > ARTIFACT_VERSION {
            return Err(Error::Artifact(format!(
                "unsupported format version {version} (this build reads up to {ARTIFACT_VERSION})"
            )));
        }
        let max_line_span = doc
            .require("max_line_span")
            .and_then(JsonValue::as_usize)
            .map_err(|e| Error::Artifact(format!("{e:?}")))?;
        let matching_backend = doc
            .require("matching_backend")
            .and_then(JsonValue::as_str)
            .map_err(|e| Error::Artifact(format!("{e:?}")))
            .and_then(|s| MatchingBackend::parse(s).map_err(|e| Error::Artifact(e.to_string())))?;
        let entries = doc
            .require("templates")
            .and_then(JsonValue::as_array)
            .map_err(|e| Error::Artifact(format!("{e:?}")))?;
        let mut templates = Vec::with_capacity(entries.len());
        for (i, entry) in entries.iter().enumerate() {
            let nodes_json = entry
                .require("nodes")
                .and_then(JsonValue::as_array)
                .map_err(|e| Error::Artifact(format!("template {i}: {e:?}")))?;
            let nodes = nodes_json
                .iter()
                .map(node_from_json)
                .collect::<Result<Vec<Node>>>()
                .map_err(|e| match e {
                    Error::Artifact(msg) => Error::Artifact(format!("template {i}: {msg}")),
                    other => other,
                })?;
            let template = StructureTemplate::new(nodes);
            // Cross-check the recorded shape counters against the re-parsed tree — a
            // cheap structural integrity check independent of the checksum.
            let field_count = entry
                .require("field_count")
                .and_then(JsonValue::as_usize)
                .map_err(|e| Error::Artifact(format!("template {i}: {e:?}")))?;
            let array_count = entry
                .require("array_count")
                .and_then(JsonValue::as_usize)
                .map_err(|e| Error::Artifact(format!("template {i}: {e:?}")))?;
            if field_count != template.field_count() || array_count != template.array_count() {
                return Err(Error::Artifact(format!(
                    "template {i}: shape counters disagree with the node tree \
                     (recorded {field_count} fields / {array_count} arrays, \
                     parsed {} / {})",
                    template.field_count(),
                    template.array_count()
                )));
            }
            templates.push(template);
        }
        let artifact = TemplateArtifact::new(templates, max_line_span, matching_backend)?;
        let recorded = doc
            .require("checksum")
            .and_then(JsonValue::as_str)
            .map_err(|e| Error::Artifact(format!("{e:?}")))?;
        let recorded = u64::from_str_radix(recorded, 16)
            .map_err(|_| Error::Artifact(format!("malformed checksum `{recorded}`")))?;
        let computed = artifact.checksum();
        if recorded != computed {
            return Err(Error::Artifact(format!(
                "checksum mismatch: recorded {recorded:016x}, computed {computed:016x} \
                 (the artifact is corrupt or was edited)"
            )));
        }
        Ok(artifact)
    }

    /// Writes the artifact document to `path` **atomically**: the JSON is staged to a
    /// `.tmp` sibling, `fsync`'d, renamed over `path`, and the parent directory is
    /// `fsync`'d — the same pattern the CSV exporter uses.  A crash at any moment leaves
    /// either the previous artifact or the new one on disk, never a torn mixture (the
    /// stale `.tmp` a crash may leave behind is overwritten by the next save).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let tmp = tmp_sibling(path);
        let stage = || -> std::io::Result<()> {
            {
                let mut file = std::fs::File::create(&tmp)?;
                std::io::Write::write_all(&mut file, self.to_json().as_bytes())?;
                file.sync_all()?;
            }
            crate::journal::crash_point("compact.before-rename");
            std::fs::rename(&tmp, path)?;
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                crate::journal::fsync_dir(dir)?;
            }
            Ok(())
        };
        stage().map_err(|e| {
            std::fs::remove_file(&tmp).ok();
            Error::io_path(&e, path)
        })
    }

    /// Reads and verifies an artifact document from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| Error::io_path(&e, path))?;
        Self::from_json(&text)
    }

    /// Recompiles the serving matcher from the artifact: the same tables (and, under the
    /// fused backend, the same merged byte-class DFA) the freshly discovered set would
    /// have produced.
    pub fn matcher(&self) -> SpanLineMatcher {
        SpanLineMatcher::with_backend(&self.templates, self.max_line_span, self.matching_backend)
    }
}

/// The staging sibling `save` writes before the atomic rename: `<file>.tmp` next to the
/// destination, so the rename never crosses a filesystem boundary.
fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One FNV-1a 64 absorption step over `bytes`, continuing from `hash`.
fn fnv1a64(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes one template node: `"field"`, `{"literal": s}`, or
/// `{"array": {"body": [...], "separator": c, "terminator": c}}`.
/// Shared with [`crate::journal`], whose WAL entries use the same node encoding.
pub(crate) fn node_to_json(node: &Node) -> JsonValue {
    match node {
        Node::Field => JsonValue::String("field".into()),
        Node::Literal(s) => {
            JsonValue::Object(vec![("literal".into(), JsonValue::String(s.clone()))])
        }
        Node::Array {
            body,
            separator,
            terminator,
        } => JsonValue::Object(vec![(
            "array".into(),
            JsonValue::Object(vec![
                (
                    "body".into(),
                    JsonValue::Array(body.iter().map(node_to_json).collect()),
                ),
                ("separator".into(), JsonValue::String(separator.to_string())),
                (
                    "terminator".into(),
                    JsonValue::String(terminator.to_string()),
                ),
            ]),
        )]),
    }
}

/// Decodes one template node written by [`node_to_json`].
pub(crate) fn node_from_json(value: &JsonValue) -> Result<Node> {
    match value {
        JsonValue::String(s) if s == "field" => Ok(Node::Field),
        JsonValue::String(s) => Err(Error::Artifact(format!("unknown node kind `{s}`"))),
        JsonValue::Object(_) => {
            if let Some(lit) = value.get("literal") {
                let s = lit
                    .as_str()
                    .map_err(|e| Error::Artifact(format!("{e:?}")))?;
                return Ok(Node::Literal(s.to_string()));
            }
            if let Some(arr) = value.get("array") {
                let body = arr
                    .require("body")
                    .and_then(JsonValue::as_array)
                    .map_err(|e| Error::Artifact(format!("{e:?}")))?
                    .iter()
                    .map(node_from_json)
                    .collect::<Result<Vec<Node>>>()?;
                let separator = single_char(arr, "separator")?;
                let terminator = single_char(arr, "terminator")?;
                return Ok(Node::Array {
                    body,
                    separator,
                    terminator,
                });
            }
            Err(Error::Artifact(
                "object node is neither `literal` nor `array`".into(),
            ))
        }
        other => Err(Error::Artifact(format!(
            "node must be a string or object, got {other:?}"
        ))),
    }
}

/// Reads a one-character string field (array separators/terminators are single chars).
fn single_char(value: &JsonValue, key: &str) -> Result<char> {
    let s = value
        .require(key)
        .and_then(JsonValue::as_str)
        .map_err(|e| Error::Artifact(format!("{e:?}")))?;
    let mut chars = s.chars();
    match (chars.next(), chars.next()) {
        (Some(c), None) => Ok(c),
        _ => Err(Error::Artifact(format!(
            "`{key}` must be exactly one character, got {s:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_templates() -> Vec<StructureTemplate> {
        vec![
            StructureTemplate::new(vec![
                Node::Field,
                Node::Literal("=".into()),
                Node::Field,
                Node::Literal("\n".into()),
            ]),
            StructureTemplate::new(vec![
                Node::Literal("[".into()),
                Node::Field,
                Node::Literal("] ".into()),
                Node::Array {
                    body: vec![Node::Field],
                    separator: ',',
                    terminator: '\n',
                },
            ]),
        ]
    }

    #[test]
    fn round_trip_preserves_templates_and_metadata() {
        let artifact =
            TemplateArtifact::new(sample_templates(), 10, MatchingBackend::Fused).unwrap();
        let json = artifact.to_json();
        let loaded = TemplateArtifact::from_json(&json).unwrap();
        assert_eq!(loaded, artifact);
        assert_eq!(loaded.checksum(), artifact.checksum());
    }

    #[test]
    fn empty_template_set_is_rejected() {
        let err = TemplateArtifact::new(Vec::new(), 10, MatchingBackend::Fused).unwrap_err();
        assert!(matches!(err, Error::Artifact(_)));
    }

    #[test]
    fn tampered_document_fails_the_checksum() {
        let artifact =
            TemplateArtifact::new(sample_templates(), 10, MatchingBackend::Fused).unwrap();
        // Change a literal without updating the checksum: the load must fail loudly.
        let json = artifact.to_json().replace("\"=\"", "\":\"");
        let err = TemplateArtifact::from_json(&json).unwrap_err();
        assert!(
            matches!(&err, Error::Artifact(msg) if msg.contains("checksum")),
            "{err:?}"
        );
    }

    #[test]
    fn unknown_format_and_future_version_are_rejected() {
        let artifact =
            TemplateArtifact::new(sample_templates(), 10, MatchingBackend::Fused).unwrap();
        let json = artifact.to_json().replace(ARTIFACT_FORMAT, "other-format");
        assert!(matches!(
            TemplateArtifact::from_json(&json),
            Err(Error::Artifact(_))
        ));
        let json = artifact
            .to_json()
            .replace("\"version\": 1", "\"version\": 99");
        let err = TemplateArtifact::from_json(&json).unwrap_err();
        assert!(
            matches!(&err, Error::Artifact(msg) if msg.contains("version")),
            "{err:?}"
        );
    }

    #[test]
    fn save_load_round_trips_through_a_file() {
        let artifact =
            TemplateArtifact::new(sample_templates(), 7, MatchingBackend::Trial).unwrap();
        let dir = std::env::temp_dir().join("datamaran-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("templates.json");
        artifact.save(&path).unwrap();
        let loaded = TemplateArtifact::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, artifact);
        assert_eq!(loaded.max_line_span, 7);
        assert_eq!(loaded.matching_backend, MatchingBackend::Trial);
    }

    #[test]
    fn save_is_staged_and_leaves_no_tmp_behind() {
        let artifact =
            TemplateArtifact::new(sample_templates(), 10, MatchingBackend::Fused).unwrap();
        let dir = std::env::temp_dir().join(format!("dm-artifact-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("templates.json");
        // Pre-existing destination: the rename must replace it wholesale.
        std::fs::write(&path, "{ stale artifact").unwrap();
        artifact.save(&path).unwrap();
        assert_eq!(TemplateArtifact::load(&path).unwrap(), artifact);
        assert!(
            !tmp_sibling(&path).exists(),
            "staging file must not outlive the save"
        );
        // A stale .tmp from a hypothetical crash is simply overwritten by the next save.
        std::fs::write(tmp_sibling(&path), "torn").unwrap();
        artifact.save(&path).unwrap();
        assert!(!tmp_sibling(&path).exists());
        assert_eq!(TemplateArtifact::load(&path).unwrap(), artifact);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tmp_sibling_appends_to_the_file_name() {
        assert_eq!(
            tmp_sibling(Path::new("/a/b/templates.json")),
            Path::new("/a/b/templates.json.tmp")
        );
        assert_eq!(tmp_sibling(Path::new("t.json")), Path::new("t.json.tmp"));
    }

    #[test]
    fn truncated_document_is_an_artifact_error_not_a_panic() {
        let artifact =
            TemplateArtifact::new(sample_templates(), 10, MatchingBackend::Fused).unwrap();
        let json = artifact.to_json();
        let truncated = &json[..json.len() / 2];
        assert!(matches!(
            TemplateArtifact::from_json(truncated),
            Err(Error::Artifact(_))
        ));
    }
}
