//! Explicit LL(1) grammar construction for structure templates (§3.3, Remark).
//!
//! The paper observes that every structure template of Assumption 3 "can be rewritten as an
//! equivalent LL(1) grammar", so the final extraction pass runs in linear time with a
//! canonical predictive parser.  The hand-written matcher in [`crate::parser`] exploits this
//! implicitly; this module makes the claim explicit and checkable:
//!
//! * [`Grammar::from_template`] builds the grammar — nonterminals, productions, and the
//!   terminal alphabet (one terminal per formatting character plus the *field character*
//!   class covering everything else);
//! * [`Grammar::first_sets`] / [`Grammar::follow_sets`] compute the classic FIRST/FOLLOW
//!   sets;
//! * [`Grammar::is_ll1`] verifies the LL(1) condition (no FIRST/FIRST or FIRST/FOLLOW
//!   conflicts), which holds for every template satisfying Assumptions 2–3;
//! * [`Grammar::match_at`] is a table-driven predictive parser that recognizes one
//!   instantiated record and reports the same field spans as the recursive-descent matcher
//!   (the two are compared in tests and in the `grammar_equivalence` integration suite).
//!
//! The module is self-contained and has no effect on the main pipeline; it exists to justify
//! the linear-time extraction claim and to cross-check the production matcher.

use crate::chars::CharSet;
use crate::parser::FieldCell;
use crate::structure::{Node, StructureTemplate};
use std::collections::BTreeSet;
use std::fmt;

/// A terminal symbol class of the record grammar.
///
/// Under Assumption 2 the formatting characters (`RT-CharSet`) and the field characters are
/// disjoint, so a single lookahead character always falls into exactly one class.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Terminal {
    /// One specific formatting character of the template.
    Ch(char),
    /// Any character *not* in the template's formatting character set.
    FieldChar,
    /// End of input.
    End,
}

impl fmt::Display for Terminal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminal::Ch('\n') => write!(f, "'\\n'"),
            Terminal::Ch('\t') => write!(f, "'\\t'"),
            Terminal::Ch(c) => write!(f, "'{c}'"),
            Terminal::FieldChar => write!(f, "fieldchar"),
            Terminal::End => write!(f, "$"),
        }
    }
}

/// A grammar symbol: terminal or nonterminal (by index).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Symbol {
    /// A terminal symbol.
    T(Terminal),
    /// A nonterminal, identified by its index in [`Grammar::nonterminals`].
    N(usize),
}

/// What a nonterminal stands for, used when printing the grammar and when the predictive
/// parser needs to emit field spans.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NonTerminalKind {
    /// The start symbol (the whole record).
    Start,
    /// A field leaf; the payload is the field's column index (pre-order).
    Field(usize),
    /// The "rest of a field value" helper (`R_k -> fieldchar R_k | ε`).
    FieldRest(usize),
    /// The body sequence of an array node (pre-order array id).
    ArrayBody(usize),
    /// The separator-or-terminator decision point of an array node.
    ArrayTail(usize),
}

/// One production `lhs -> rhs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Production {
    /// Index of the left-hand-side nonterminal.
    pub lhs: usize,
    /// Right-hand-side symbols; empty for an ε-production.
    pub rhs: Vec<Symbol>,
}

impl Production {
    /// `true` for an ε-production.
    pub fn is_epsilon(&self) -> bool {
        self.rhs.is_empty()
    }
}

/// An LL(1) grammar generated from a structure template.
#[derive(Clone, Debug)]
pub struct Grammar {
    /// Nonterminal descriptors; index 0 is the start symbol.
    nonterminals: Vec<NonTerminalKind>,
    /// All productions, grouped implicitly by `lhs`.
    productions: Vec<Production>,
    /// The template's formatting character set (terminal alphabet minus `FieldChar`).
    charset: CharSet,
}

/// FIRST or FOLLOW set: a set of terminal classes, plus (for FIRST) whether ε is derivable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TerminalSet {
    /// The terminal classes in the set.
    pub terminals: BTreeSet<Terminal>,
    /// Whether the associated nonterminal can derive the empty string (FIRST sets only).
    pub nullable: bool,
}

impl Grammar {
    /// Builds the LL(1) grammar of a structure template.
    ///
    /// Every field leaf becomes a pair of nonterminals (`F_k -> fieldchar R_k`,
    /// `R_k -> fieldchar R_k | ε`), every array node becomes a body nonterminal and a
    /// tail nonterminal (`TAIL -> sep BODY TAIL | term`), and literals are inlined as
    /// terminal sequences.
    pub fn from_template(template: &StructureTemplate) -> Self {
        let mut grammar = Grammar {
            nonterminals: vec![NonTerminalKind::Start],
            productions: Vec::new(),
            charset: template.char_set(),
        };
        let mut column = 0usize;
        let mut array_id = 0usize;
        let rhs = grammar.sequence_symbols(template.nodes(), &mut column, &mut array_id);
        grammar.productions.push(Production { lhs: 0, rhs });
        grammar
    }

    /// Converts a node sequence into a symbol sequence, adding helper nonterminals on the way.
    fn sequence_symbols(
        &mut self,
        nodes: &[Node],
        column: &mut usize,
        array_id: &mut usize,
    ) -> Vec<Symbol> {
        let mut rhs = Vec::new();
        for node in nodes {
            match node {
                Node::Field => {
                    let col = *column;
                    *column += 1;
                    let f = self.add_nonterminal(NonTerminalKind::Field(col));
                    let r = self.add_nonterminal(NonTerminalKind::FieldRest(col));
                    // F_k -> fieldchar R_k
                    self.productions.push(Production {
                        lhs: f,
                        rhs: vec![Symbol::T(Terminal::FieldChar), Symbol::N(r)],
                    });
                    // R_k -> fieldchar R_k | ε
                    self.productions.push(Production {
                        lhs: r,
                        rhs: vec![Symbol::T(Terminal::FieldChar), Symbol::N(r)],
                    });
                    self.productions.push(Production {
                        lhs: r,
                        rhs: vec![],
                    });
                    rhs.push(Symbol::N(f));
                }
                Node::Literal(s) => {
                    rhs.extend(s.chars().map(|c| Symbol::T(Terminal::Ch(c))));
                }
                Node::Array {
                    body,
                    separator,
                    terminator,
                } => {
                    let my_id = *array_id;
                    *array_id += 1;
                    let body_nt = self.add_nonterminal(NonTerminalKind::ArrayBody(my_id));
                    let tail_nt = self.add_nonterminal(NonTerminalKind::ArrayTail(my_id));
                    let column_before = *column;
                    let body_rhs = self.sequence_symbols(body, column, array_id);
                    // Every repetition reuses the same body nonterminals (and therefore the
                    // same column indices), matching the recursive-descent matcher.
                    let _ = column_before;
                    self.productions.push(Production {
                        lhs: body_nt,
                        rhs: body_rhs,
                    });
                    // TAIL -> sep BODY TAIL | term
                    self.productions.push(Production {
                        lhs: tail_nt,
                        rhs: vec![
                            Symbol::T(Terminal::Ch(*separator)),
                            Symbol::N(body_nt),
                            Symbol::N(tail_nt),
                        ],
                    });
                    self.productions.push(Production {
                        lhs: tail_nt,
                        rhs: vec![Symbol::T(Terminal::Ch(*terminator))],
                    });
                    rhs.push(Symbol::N(body_nt));
                    rhs.push(Symbol::N(tail_nt));
                }
            }
        }
        rhs
    }

    fn add_nonterminal(&mut self, kind: NonTerminalKind) -> usize {
        self.nonterminals.push(kind);
        self.nonterminals.len() - 1
    }

    /// The nonterminal descriptors (index 0 is the start symbol).
    pub fn nonterminals(&self) -> &[NonTerminalKind] {
        &self.nonterminals
    }

    /// All productions of the grammar.
    pub fn productions(&self) -> &[Production] {
        &self.productions
    }

    /// The formatting character set (the terminal alphabet without the field-character class).
    pub fn charset(&self) -> &CharSet {
        &self.charset
    }

    /// Classifies one lookahead character into a terminal class.
    pub fn classify(&self, c: char) -> Terminal {
        if self.charset.contains(c) {
            Terminal::Ch(c)
        } else {
            Terminal::FieldChar
        }
    }

    /// Computes the FIRST set of every nonterminal.
    pub fn first_sets(&self) -> Vec<TerminalSet> {
        let mut first: Vec<TerminalSet> = vec![TerminalSet::default(); self.nonterminals.len()];
        let mut changed = true;
        while changed {
            changed = false;
            for p in &self.productions {
                let (add, nullable) = self.first_of_sequence(&p.rhs, &first);
                let entry = &mut first[p.lhs];
                for t in add {
                    if entry.terminals.insert(t) {
                        changed = true;
                    }
                }
                if nullable && !entry.nullable {
                    entry.nullable = true;
                    changed = true;
                }
            }
        }
        first
    }

    /// FIRST of a symbol sequence given per-nonterminal FIRST sets; also reports whether the
    /// whole sequence can derive ε.
    fn first_of_sequence(
        &self,
        seq: &[Symbol],
        first: &[TerminalSet],
    ) -> (BTreeSet<Terminal>, bool) {
        let mut out = BTreeSet::new();
        for sym in seq {
            match sym {
                Symbol::T(t) => {
                    out.insert(*t);
                    return (out, false);
                }
                Symbol::N(n) => {
                    out.extend(first[*n].terminals.iter().copied());
                    if !first[*n].nullable {
                        return (out, false);
                    }
                }
            }
        }
        (out, true)
    }

    /// Computes the FOLLOW set of every nonterminal (the start symbol's FOLLOW contains
    /// [`Terminal::End`]).
    pub fn follow_sets(&self) -> Vec<TerminalSet> {
        let first = self.first_sets();
        let mut follow: Vec<TerminalSet> = vec![TerminalSet::default(); self.nonterminals.len()];
        follow[0].terminals.insert(Terminal::End);
        let mut changed = true;
        while changed {
            changed = false;
            for p in &self.productions {
                for (i, sym) in p.rhs.iter().enumerate() {
                    let Symbol::N(n) = sym else { continue };
                    let (tail_first, tail_nullable) =
                        self.first_of_sequence(&p.rhs[i + 1..], &first);
                    let before = follow[*n].terminals.len();
                    follow[*n].terminals.extend(tail_first);
                    if tail_nullable {
                        let lhs_follow: Vec<Terminal> =
                            follow[p.lhs].terminals.iter().copied().collect();
                        follow[*n].terminals.extend(lhs_follow);
                    }
                    if follow[*n].terminals.len() != before {
                        changed = true;
                    }
                }
            }
        }
        follow
    }

    /// Checks the LL(1) condition: for every nonterminal, the prediction sets of its
    /// productions are pairwise disjoint.  Returns the list of conflicting
    /// (nonterminal, terminal) pairs; an empty list means the grammar is LL(1).
    pub fn ll1_conflicts(&self) -> Vec<(usize, Terminal)> {
        let first = self.first_sets();
        let follow = self.follow_sets();
        let mut conflicts = Vec::new();
        for (nt, follow_set) in follow.iter().enumerate() {
            let mut seen: BTreeSet<Terminal> = BTreeSet::new();
            for p in self.productions.iter().filter(|p| p.lhs == nt) {
                let (mut predict, nullable) = self.first_of_sequence(&p.rhs, &first);
                if nullable {
                    predict.extend(follow_set.terminals.iter().copied());
                }
                for t in predict {
                    if !seen.insert(t) {
                        conflicts.push((nt, t));
                    }
                }
            }
        }
        conflicts
    }

    /// `true` if the grammar satisfies the LL(1) condition.
    pub fn is_ll1(&self) -> bool {
        self.ll1_conflicts().is_empty()
    }

    /// Builds the LL(1) parse table: for every nonterminal, the production chosen for each
    /// lookahead terminal class.  Returns `None` when the grammar is not LL(1).
    pub fn parse_table(&self) -> Option<ParseTable> {
        if !self.is_ll1() {
            return None;
        }
        let first = self.first_sets();
        let follow = self.follow_sets();
        let mut rows: Vec<Vec<(Terminal, usize)>> = vec![Vec::new(); self.nonterminals.len()];
        for (pi, p) in self.productions.iter().enumerate() {
            let (mut predict, nullable) = self.first_of_sequence(&p.rhs, &first);
            if nullable {
                predict.extend(follow[p.lhs].terminals.iter().copied());
            }
            for t in predict {
                rows[p.lhs].push((t, pi));
            }
        }
        Some(ParseTable { rows })
    }

    /// Runs the table-driven predictive parser at byte offset `start` of `text`.
    ///
    /// On success returns the end offset of the matched record and the extracted field cells
    /// (column indices follow the same pre-order numbering as [`crate::parser`]).  Returns
    /// `None` if no record of this template starts at `start`.
    pub fn match_at(&self, text: &str, start: usize) -> Option<(usize, Vec<FieldCell>)> {
        let table = self.parse_table()?;
        let start_production = self
            .productions
            .iter()
            .position(|p| p.lhs == 0)
            .expect("start symbol has a production");
        let mut stack: Vec<Symbol> = self.productions[start_production]
            .rhs
            .iter()
            .rev()
            .copied()
            .collect();
        let mut pos = start;
        let mut fields: Vec<FieldCell> = Vec::new();
        let mut open_field: Option<(usize, usize)> = None;

        while let Some(top) = stack.pop() {
            let lookahead = match text[pos..].chars().next() {
                Some(c) => self.classify(c),
                None => Terminal::End,
            };
            match top {
                Symbol::T(expected) => {
                    if lookahead != expected || lookahead == Terminal::End {
                        return None;
                    }
                    let c = text[pos..].chars().next().expect("non-empty at terminal");
                    pos += c.len_utf8();
                }
                Symbol::N(nt) => {
                    let pi = table.choose(nt, lookahead)?;
                    let production = &self.productions[pi];
                    match self.nonterminals[nt] {
                        NonTerminalKind::Field(col) => {
                            open_field = Some((col, pos));
                        }
                        NonTerminalKind::FieldRest(col) if production.is_epsilon() => {
                            let (open_col, field_start) =
                                open_field.take().expect("field opened before its rest");
                            debug_assert_eq!(open_col, col);
                            fields.push(FieldCell {
                                column: col,
                                start: field_start,
                                end: pos,
                            });
                        }
                        _ => {}
                    }
                    for sym in production.rhs.iter().rev() {
                        stack.push(*sym);
                    }
                }
            }
        }
        Some((pos, fields))
    }

    /// Human-readable rendering of the productions (for documentation and debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.productions {
            out.push_str(&self.nonterminal_name(p.lhs));
            out.push_str(" -> ");
            if p.rhs.is_empty() {
                out.push('ε');
            } else {
                for (i, sym) in p.rhs.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    match sym {
                        Symbol::T(t) => out.push_str(&t.to_string()),
                        Symbol::N(n) => out.push_str(&self.nonterminal_name(*n)),
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    fn nonterminal_name(&self, idx: usize) -> String {
        match self.nonterminals[idx] {
            NonTerminalKind::Start => "S".to_string(),
            NonTerminalKind::Field(c) => format!("F{c}"),
            NonTerminalKind::FieldRest(c) => format!("R{c}"),
            NonTerminalKind::ArrayBody(a) => format!("B{a}"),
            NonTerminalKind::ArrayTail(a) => format!("T{a}"),
        }
    }
}

/// The LL(1) parse table: one row per nonterminal mapping lookahead terminals to productions.
#[derive(Clone, Debug)]
pub struct ParseTable {
    rows: Vec<Vec<(Terminal, usize)>>,
}

impl ParseTable {
    /// The production to expand for `nonterminal` on `lookahead`, if any.
    pub fn choose(&self, nonterminal: usize, lookahead: Terminal) -> Option<usize> {
        self.rows[nonterminal]
            .iter()
            .find(|(t, _)| *t == lookahead)
            .map(|(_, p)| *p)
    }

    /// Total number of populated table cells.
    pub fn cell_count(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chars::CharSet;
    use crate::dataset::Dataset;
    use crate::parser::parse_dataset;
    use crate::record::RecordTemplate;
    use crate::reduce::reduce;

    fn flat(example: &str, charset: &str) -> StructureTemplate {
        let cs = CharSet::from_chars(charset.chars());
        StructureTemplate::from_record_template(&RecordTemplate::from_instantiated(example, &cs))
    }

    fn arrayed(example: &str, charset: &str) -> StructureTemplate {
        let cs = CharSet::from_chars(charset.chars());
        reduce(&RecordTemplate::from_instantiated(example, &cs))
    }

    #[test]
    fn flat_template_grammar_is_ll1() {
        let st = flat("[01:05] 10.0.0.1 GET /x\n", "[]:. /\n");
        let g = Grammar::from_template(&st);
        assert!(g.is_ll1(), "conflicts: {:?}", g.ll1_conflicts());
        assert!(g.parse_table().is_some());
    }

    #[test]
    fn array_template_grammar_is_ll1() {
        let st = arrayed("1,2,3,4\n", ",\n");
        assert_eq!(st.to_string(), "(F,)*F\\n");
        let g = Grammar::from_template(&st);
        assert!(g.is_ll1(), "conflicts: {:?}", g.ll1_conflicts());
    }

    #[test]
    fn nested_array_grammar_is_ll1() {
        // F,"(F,)*F",F\n — quoted list inside a csv row (Figure 6 of the paper).
        let st = arrayed("a,\"x,y,z\",b\n", ",\"\n");
        let g = Grammar::from_template(&st);
        assert!(g.has_array_nonterminals());
        assert!(g.is_ll1(), "conflicts: {:?}", g.ll1_conflicts());
    }

    impl Grammar {
        fn has_array_nonterminals(&self) -> bool {
            self.nonterminals
                .iter()
                .any(|k| matches!(k, NonTerminalKind::ArrayBody(_)))
        }
    }

    #[test]
    fn first_sets_of_field_contain_fieldchar() {
        let st = flat("a=b\n", "=\n");
        let g = Grammar::from_template(&st);
        let first = g.first_sets();
        // Find the Field(0) nonterminal.
        let f0 = g
            .nonterminals()
            .iter()
            .position(|k| *k == NonTerminalKind::Field(0))
            .unwrap();
        assert!(first[f0].terminals.contains(&Terminal::FieldChar));
        assert!(!first[f0].nullable);
    }

    #[test]
    fn follow_of_field_rest_is_the_next_formatting_char() {
        let st = flat("a=b\n", "=\n");
        let g = Grammar::from_template(&st);
        let follow = g.follow_sets();
        let r0 = g
            .nonterminals()
            .iter()
            .position(|k| *k == NonTerminalKind::FieldRest(0))
            .unwrap();
        assert!(follow[r0].terminals.contains(&Terminal::Ch('=')));
    }

    #[test]
    fn match_at_agrees_with_recursive_descent_on_flat_records() {
        let text = "[01:05] alice\n[02:06] bob\n";
        let st = flat("[01:05] alice\n", "[]: \n");
        let g = Grammar::from_template(&st);
        let data = Dataset::new(text);
        let parse = parse_dataset(&data, std::slice::from_ref(&st), 10);
        assert_eq!(parse.records.len(), 2);
        for rec in &parse.records {
            let (end, fields) = g.match_at(text, rec.byte_span.0).expect("grammar matches");
            assert_eq!(end, rec.byte_span.1);
            assert_eq!(fields, rec.fields);
        }
    }

    #[test]
    fn match_at_agrees_with_recursive_descent_on_array_records() {
        let text = "1,2,3\n4,5\n6,7,8,9\n";
        let st = arrayed("1,2,3\n", ",\n");
        let g = Grammar::from_template(&st);
        let data = Dataset::new(text);
        let parse = parse_dataset(&data, std::slice::from_ref(&st), 10);
        assert_eq!(parse.records.len(), 3);
        for rec in &parse.records {
            let (end, fields) = g.match_at(text, rec.byte_span.0).expect("grammar matches");
            assert_eq!(end, rec.byte_span.1);
            assert_eq!(fields, rec.fields);
        }
    }

    #[test]
    fn match_at_rejects_non_matching_prefixes() {
        let st = flat("a=b\n", "=\n");
        let g = Grammar::from_template(&st);
        assert!(g.match_at("no equals sign here\n", 0).is_none());
        assert!(g.match_at("=leading\n", 0).is_none());
        assert!(g.match_at("", 0).is_none());
    }

    #[test]
    fn match_at_handles_truncated_input() {
        let st = flat("a=b\n", "=\n");
        let g = Grammar::from_template(&st);
        // Missing the trailing newline: the grammar requires it.
        assert!(g.match_at("a=b", 0).is_none());
    }

    #[test]
    fn parse_table_has_one_entry_per_prediction() {
        let st = arrayed("1,2,3\n", ",\n");
        let g = Grammar::from_template(&st);
        let table = g.parse_table().unwrap();
        assert!(table.cell_count() >= g.productions().len());
        // The array tail decides between ',' and '\n'.
        let tail = g
            .nonterminals()
            .iter()
            .position(|k| matches!(k, NonTerminalKind::ArrayTail(_)))
            .unwrap();
        assert!(table.choose(tail, Terminal::Ch(',')).is_some());
        assert!(table.choose(tail, Terminal::Ch('\n')).is_some());
        assert!(table.choose(tail, Terminal::FieldChar).is_none());
    }

    #[test]
    fn render_lists_every_production() {
        let st = flat("a=b\n", "=\n");
        let g = Grammar::from_template(&st);
        let rendered = g.render();
        assert_eq!(rendered.lines().count(), g.productions().len());
        assert!(rendered.contains("S ->"));
        assert!(rendered.contains("ε"));
    }

    #[test]
    fn grammar_size_is_linear_in_template_size() {
        let st = flat("a=b=c=d=e=f=g=h\n", "=\n");
        let g = Grammar::from_template(&st);
        // 8 fields -> 8 * (F + R with 2 productions) + start production.
        assert_eq!(g.nonterminals().len(), 1 + 8 * 2);
        assert_eq!(g.productions().len(), 1 + 8 * 3);
    }
}
