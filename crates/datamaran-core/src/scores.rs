//! Additional regularity score functions.
//!
//! The paper stresses that "the design of Datamaran is independent of the choice of this
//! scoring function: we can plug in any reasonable scoring function" (§4).  Besides the
//! default MDL scorer ([`crate::mdl::MdlScorer`]) and the coverage-only scorer
//! ([`crate::mdl::CoverageScorer`]), this module provides scorers used by the ablation
//! experiments in the benchmark harness:
//!
//! * [`NonFieldCoverageScorer`] — ranks templates purely by the assimilation-score signal
//!   (coverage of *formatting* characters), i.e. uses the pruning-step heuristic as the final
//!   score.  Comparing it against MDL quantifies how much the evaluation step contributes.
//! * [`UntypedMdlScorer`] — the Appendix 9.2 description length with field typing disabled
//!   (every field is described as a raw string).  Comparing it against the full MDL scorer
//!   quantifies the contribution of the enum/int/real/string field models.
//! * [`NoisePenaltyScorer`] — a wrapper that multiplies the noise term of an inner scorer,
//!   exposing the trade-off between explaining more of the file and keeping templates simple.

use crate::dataset::Dataset;
use crate::extract::SpanParse;
use crate::mdl::RegularityScorer;
use crate::parser::ParseResult;
use crate::structure::StructureTemplate;

/// Scores a template by how much formatting-character mass it explains: the negated
/// non-field coverage (lower = better, to match the description-length convention).
///
/// This is exactly the quantity the pruning step already optimizes (§4.2), so using it as the
/// final score ablates the evaluation step.
#[derive(Clone, Copy, Debug, Default)]
pub struct NonFieldCoverageScorer;

impl RegularityScorer for NonFieldCoverageScorer {
    fn score(&self, dataset: &Dataset, _template: &StructureTemplate, parse: &ParseResult) -> f64 {
        let field_bytes: usize = parse
            .records
            .iter()
            .flat_map(|r| r.fields.iter())
            .map(|f| f.end - f.start)
            .sum();
        let covered = parse.record_bytes;
        let non_field = covered.saturating_sub(field_bytes);
        // Larger non-field coverage is better; break ties toward higher total coverage.
        -(non_field as f64) - covered as f64 / dataset.len().max(1) as f64
    }

    fn score_span(
        &self,
        dataset: &Dataset,
        _template: &StructureTemplate,
        parse: &SpanParse,
    ) -> Option<f64> {
        // The cell arena holds exactly the cells of the matched records (rolled back on
        // every failed or rejected match), so summing it equals the per-record walk.
        let field_bytes: usize = parse.cells.iter().map(|f| f.end - f.start).sum();
        let covered = parse.record_bytes;
        let non_field = covered.saturating_sub(field_bytes);
        Some(-(non_field as f64) - covered as f64 / dataset.len().max(1) as f64)
    }

    fn name(&self) -> &'static str {
        "non-field-coverage"
    }
}

/// The Appendix 9.2 description length with the field-type models disabled: every field value
/// is charged as a raw string (`(len + 1) * 8` bits), regardless of whether the column is
/// enumerable, integral, or real.
#[derive(Clone, Copy, Debug, Default)]
pub struct UntypedMdlScorer;

impl RegularityScorer for UntypedMdlScorer {
    fn score(&self, dataset: &Dataset, template: &StructureTemplate, parse: &ParseResult) -> f64 {
        let mut bits = template.description_chars() as f64 * 8.0;
        bits += 32.0 + parse.block_count() as f64;
        bits += parse.noise_bytes as f64 * 8.0;
        let text = dataset.text();
        for rec in parse.records.iter().filter(|r| r.template_index == 0) {
            for cell in &rec.fields {
                let len = text[cell.start..cell.end].chars().count();
                bits += (len as f64 + 1.0) * 8.0;
            }
            // Array repetition counts, as in the typed scorer, cost one byte each.
            bits += 8.0;
        }
        bits
    }

    fn score_span(
        &self,
        dataset: &Dataset,
        template: &StructureTemplate,
        parse: &SpanParse,
    ) -> Option<f64> {
        let mut bits = template.description_chars() as f64 * 8.0;
        bits += 32.0 + parse.block_count() as f64;
        bits += parse.noise_bytes as f64 * 8.0;
        let text = dataset.text();
        for rec in parse.records.iter().filter(|r| r.template_index == 0) {
            for cell in parse.record_cells(rec) {
                let len = text[cell.start..cell.end].chars().count();
                bits += (len as f64 + 1.0) * 8.0;
            }
            bits += 8.0;
        }
        Some(bits)
    }

    fn name(&self) -> &'static str {
        "mdl-untyped"
    }
}

/// Wraps another scorer and multiplies the description cost of noise by `noise_weight`.
///
/// `noise_weight > 1` favours templates that explain more of the file even when their field
/// values are less regular; `noise_weight < 1` favours simpler templates that leave more
/// noise.  The default MDL scorer corresponds to `noise_weight = 1`.
#[derive(Clone, Copy, Debug)]
pub struct NoisePenaltyScorer<S> {
    inner: S,
    noise_weight: f64,
}

impl<S: RegularityScorer> NoisePenaltyScorer<S> {
    /// Wraps `inner`, scaling its noise term by `noise_weight`.
    pub fn new(inner: S, noise_weight: f64) -> Self {
        NoisePenaltyScorer {
            inner,
            noise_weight,
        }
    }

    /// The configured noise weight.
    pub fn noise_weight(&self) -> f64 {
        self.noise_weight
    }
}

impl<S: RegularityScorer> RegularityScorer for NoisePenaltyScorer<S> {
    fn score(&self, dataset: &Dataset, template: &StructureTemplate, parse: &ParseResult) -> f64 {
        let base = self.inner.score(dataset, template, parse);
        // The inner scorer already charges noise at 8 bits per byte; add the difference.
        base + (self.noise_weight - 1.0) * parse.noise_bytes as f64 * 8.0
    }

    fn score_span(
        &self,
        dataset: &Dataset,
        template: &StructureTemplate,
        parse: &SpanParse,
    ) -> Option<f64> {
        // Span-native only when the wrapped scorer is; otherwise the engine falls back to
        // the materialized path for the whole wrapper.
        self.inner
            .score_span(dataset, template, parse)
            .map(|base| base + (self.noise_weight - 1.0) * parse.noise_bytes as f64 * 8.0)
    }

    fn name(&self) -> &'static str {
        "noise-penalty"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chars::CharSet;
    use crate::mdl::MdlScorer;
    use crate::parser::parse_dataset;
    use crate::record::RecordTemplate;

    fn flat(example: &str, charset: &str) -> StructureTemplate {
        let cs = CharSet::from_chars(charset.chars());
        StructureTemplate::from_record_template(&RecordTemplate::from_instantiated(example, &cs))
    }

    fn score_on<S: RegularityScorer>(scorer: &S, text: &str, template: &StructureTemplate) -> f64 {
        let data = Dataset::new(text);
        let parse = parse_dataset(&data, std::slice::from_ref(template), 10);
        scorer.score(&data, template, &parse)
    }

    #[test]
    fn non_field_coverage_prefers_richer_templates() {
        let text = "[01:05] a\n[02:06] b\n[03:07] c\n";
        // The "full" template separates time components; the "lazy" one treats "[01:05]" as a
        // single field, so it explains fewer formatting characters.
        let full = flat("[01:05] a\n", "[]: \n");
        let lazy = flat("[01:05] a\n", " \n");
        let s = NonFieldCoverageScorer;
        assert!(score_on(&s, text, &full) < score_on(&s, text, &lazy));
        assert_eq!(s.name(), "non-field-coverage");
    }

    #[test]
    fn untyped_mdl_is_no_cheaper_than_typed_mdl_on_numeric_data() {
        let mut text = String::new();
        for i in 0..60 {
            text.push_str(&format!("{},{}\n", i, i * 7));
        }
        let template = flat("1,2\n", ",\n");
        let typed = score_on(&MdlScorer, &text, &template);
        let untyped = score_on(&UntypedMdlScorer, &text, &template);
        assert!(
            untyped > typed,
            "untyped {untyped} should exceed typed {typed} on integer columns"
        );
    }

    #[test]
    fn untyped_mdl_still_prefers_structure_over_noise() {
        let structured = "a=1\na=2\na=3\n";
        let template = flat("a=1\n", "=\n");
        let with_noise = "a=1\nrandom garbage line that matches nothing\na=3\n";
        let s = UntypedMdlScorer;
        assert!(score_on(&s, structured, &template) < score_on(&s, with_noise, &template));
    }

    #[test]
    fn noise_penalty_scales_only_the_noise_term() {
        let text = "k=1\nnoise noise noise\nk=2\n";
        let template = flat("k=1\n", "=\n");
        let base = score_on(&MdlScorer, text, &template);
        let heavier = score_on(&NoisePenaltyScorer::new(MdlScorer, 3.0), text, &template);
        let lighter = score_on(&NoisePenaltyScorer::new(MdlScorer, 0.5), text, &template);
        assert!(heavier > base);
        assert!(lighter < base);
        let clean = "k=1\nk=2\n";
        let base_clean = score_on(&MdlScorer, clean, &template);
        let weighted_clean = score_on(&NoisePenaltyScorer::new(MdlScorer, 3.0), clean, &template);
        assert!(
            (base_clean - weighted_clean).abs() < 1e-9,
            "no noise, no change"
        );
        assert!((NoisePenaltyScorer::new(MdlScorer, 2.0).noise_weight() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scorers_are_usable_by_the_pipeline() {
        use crate::pipeline::Datamaran;
        let mut text = String::new();
        for i in 0..80 {
            text.push_str(&format!("[{:02}] host{} ok\n", i % 60, i % 9));
        }
        let engine = Datamaran::with_defaults();
        // The untyped scorer may legitimately settle on a different (e.g. composite
        // multi-line) template than the typed one; what matters here is that the pipeline
        // accepts the scorer and still explains essentially the whole file.
        let a = engine
            .extract_with_scorer(&text, &UntypedMdlScorer)
            .unwrap();
        assert!(a.record_count() > 0);
        assert!(a.noise_fraction < 0.05, "noise {}", a.noise_fraction);
        // Scaling the noise term does not change anything on a noise-free file, so the
        // noise-penalty wrapper must reproduce the default segmentation exactly.
        let b = engine
            .extract_with_scorer(&text, &NoisePenaltyScorer::new(MdlScorer, 2.0))
            .unwrap();
        assert_eq!(b.record_count(), 80);
    }
}
