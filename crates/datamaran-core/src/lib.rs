//! # datamaran-core
//!
//! An unsupervised structure-extraction engine for log datasets, reproducing
//! *"Navigating the Data Lake with DATAMARAN: Automatically Extracting Structure from Log
//! Datasets"* (Gao, Huang, Parameswaran — SIGMOD 2018).
//!
//! Given nothing but the raw text of a log file, the engine:
//!
//! 1. **generates** candidate structure templates by enumerating formatting character sets and
//!    candidate record boundaries, reducing every candidate record to a minimal
//!    regular-expression template and keeping the ones with at least `α%` coverage
//!    ([`generation`]);
//! 2. **prunes** the candidates with the assimilation score
//!    `G = Coverage × Non-Field-Coverage` ([`assimilation`]);
//! 3. **evaluates** the survivors with a pluggable regularity score (the default is the
//!    minimum-description-length score of [`mdl`]), refining each one by array unfolding and
//!    structure shifting ([`refine`]);
//! 4. **extracts** every instantiated record of the winning template(s) with an LL(1)-style
//!    parser ([`parser`]) and emits normalized / denormalized relational output
//!    ([`relational`]);
//! 5. repeats the search on the unexplained residual to handle **interleaved** datasets with
//!    multiple record types ([`pipeline`]).
//!
//! ## Quick start
//!
//! ```
//! use datamaran_core::Datamaran;
//!
//! let log = "\
//! [00:01] 10.0.0.1 GET /index\n\
//! [00:02] 10.0.0.2 GET /about\n\
//! some noise the program printed\n\
//! [00:05] 10.0.0.1 POST /login\n";
//!
//! let result = Datamaran::with_defaults().extract(log).unwrap();
//! assert_eq!(result.structures.len(), 1);
//! let records = &result.structures[0].records;
//! assert_eq!(records.len(), 3);
//! assert_eq!(result.noise_lines.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifact;
pub mod assimilation;
pub mod chars;
pub mod config;
pub mod dataset;
pub mod error;
pub mod export;
pub mod extract;
pub mod fault;
pub mod fieldtype;
pub mod fxhash;
pub mod generation;
pub mod grammar;
pub mod intern;
pub mod journal;
pub mod json;
pub mod mdl;
pub mod parallel;
pub mod parser;
pub mod pipeline;
pub mod record;
pub mod reduce;
pub mod refine;
pub mod relational;
pub mod scores;
pub mod semtype;
pub mod serve;
pub mod span;
pub mod streaming;
pub mod structure;

pub use artifact::{TemplateArtifact, ARTIFACT_FORMAT, ARTIFACT_VERSION};
pub use chars::{default_special_chars, CharSet};
pub use config::{
    DatamaranConfig, DatamaranConfigBuilder, EvaluationBackend, ExtractionBackend,
    GenerationBackend, MatchingBackend, SearchStrategy,
};
pub use dataset::Dataset;
pub use error::{BudgetKind, Error, Result};
pub use export::{
    all_records_jsonl, all_tables_csv, csv_quote, table_to_csv, write_table_csv, CountingSink,
    CsvSink, ExtractionReport, JsonLinesSink, RecordSink, RecordingSleeper, RetryPolicy,
    RetryingSink, Sleeper, StreamReport, Tee, ThreadSleeper,
};
pub use extract::{
    compile, decompile, diff_compiled, extract_records, parse_compiled_into, parse_dataset_fused,
    parse_dataset_span, parse_dataset_span_delta, parse_dataset_span_into,
    parse_dataset_span_parallel, parse_dataset_span_parallel_with, CompiledTemplate,
    CompiledTemplateSet, DeltaParseStats, FusedDfaCache, MatchStats, Op, SpanLineMatcher,
    SpanParse, SpanRecord, SpanScratch, TemplateDiff,
};
pub use fault::{FailingJournalDir, FailingReader, FailingSink, FaultSchedule};
pub use fieldtype::FieldType;
pub use generation::{generate, Candidate, GenerationOutput};
pub use grammar::Grammar;
pub use intern::{TemplateId, TemplateInterner};
pub use journal::{
    recovered_snapshot, replay_journal, FsJournalMedia, JournalConfig, JournalMedia,
    JournalPersistence, JournalReplay, MemJournalMedia, SwapDelta, TemplateJournal, TornTail,
    CRASH_POINT_ENV, JOURNAL_MAGIC, MAX_ENTRY_BYTES,
};
pub use json::{JsonError, JsonValue};
pub use mdl::{ColumnStats, CoverageScorer, MdlScorer, RegularityScorer, ScoreParts};
pub use parallel::{parse_dataset_parallel, ParallelOptions};
pub use parser::{
    parse_dataset, tree_reps, FieldCell, LineMatcher, ParseResult, RecordMatch, ValueTree,
};
pub use pipeline::{Datamaran, ExtractedStructure, ExtractionResult, PipelineStats, StepTimings};
pub use record::{field_values, FieldValue, RecordTemplate, TemplateToken};
pub use reduce::reduce;
pub use refine::{
    collect_array_paths, repetition_counts, repetition_counts_span, shift_variants, unfold_at,
    EvaluationMetrics, ParseSummary, Refined, Refiner,
};
pub use relational::{to_denormalized, to_relational, Cell, RelationalOutput, RowIdSynth, Table};
pub use scores::{NoisePenaltyScorer, NonFieldCoverageScorer, UntypedMdlScorer};
pub use semtype::{annotate_result, annotate_table, SemanticType, TableAnnotation};
pub use serve::{
    merge_summaries, snapshot_from_artifact, PersistenceStats, ServeMetrics, ServeOptions,
    ServeSession, SnapshotStore, SwapPersistence, TemplateSnapshot,
};
pub use span::{field_spans, tokenize_spans, LineIndex, SpanToken, SpanTokenKind};
#[allow(deprecated)]
pub use streaming::{
    extract_stream, extract_stream_sink, extract_stream_sink_guarded,
    extract_stream_with_templates, extract_stream_with_templates_guarded,
};
pub use streaming::{
    ErrorPolicy, OwnedRecord, QuarantineEntry, QuarantineReason, QuarantineSink, StopReason,
    StreamBudgets, StreamOptions, StreamRecord, StreamSession, StreamSummary, VecQuarantineSink,
    WindowUnmatched, WriteQuarantineSink,
};
pub use structure::{Node, StructureTemplate};
