//! The default regularity score: minimum description length (Appendix 9.2, Algorithm 2).
//!
//! The regularity score function `F(T, S)` is pluggable in Datamaran; the implementation the
//! paper (and this crate) ships computes the total number of bits needed to describe the
//! dataset given the structure template: the template itself, a record/noise indicator per
//! block, each noise block verbatim, and each record through the template with per-column
//! data types (enumerated / integer / real / string).  Lower is better.

use crate::dataset::Dataset;
use crate::extract::SpanParse;
use crate::fieldtype::{infer, parse_real, FieldType};
use crate::fxhash::FxHashSet;
use crate::parser::{ParseResult, ValueTree};
use crate::structure::StructureTemplate;

/// Bits charged for describing the repetition count of one array instance.
const ARRAY_COUNT_BITS: f64 = 16.0;

/// Bits charged for the block-count header (the `32` of the formula in Appendix 9.2).
const HEADER_BITS: f64 = 32.0;

/// A pluggable regularity score function `F(T, S)`.
///
/// Scores are *description lengths*: lower values indicate more plausible structures.  Any
/// implementation can be plugged into the evaluation step, as stressed in §4 ("The design of
/// Datamaran is independent of the choice of this scoring function").
///
/// `Sync` is a supertrait because the evaluation step shards the per-candidate refinement
/// loop across scoped worker threads that share one scorer reference; every shipped scorer
/// is a zero-sized value, and custom scorers only need to avoid non-`Sync` interior state.
pub trait RegularityScorer: Sync {
    /// Scores a structure template against a dataset given the segmentation produced by the
    /// extraction parser.  Lower is better.
    fn score(&self, dataset: &Dataset, template: &StructureTemplate, parse: &ParseResult) -> f64;

    /// Arena-native scoring over the span evaluation engine's [`SpanParse`], without
    /// materialized instantiation trees.  Implementations must return exactly the value
    /// [`RegularityScorer::score`] would return on the materialized parse; returning `None`
    /// (the default) makes the evaluation engine materialize a [`ParseResult`] and fall
    /// back to `score`, so custom scorers stay correct without a span path.
    fn score_span(
        &self,
        _dataset: &Dataset,
        _template: &StructureTemplate,
        _parse: &SpanParse,
    ) -> Option<f64> {
        None
    }

    /// [`RegularityScorer::score_span`] that additionally returns the scorer's per-column
    /// aggregates ([`ScoreParts`]) for reuse by later delta evaluations.  `None` (the
    /// default) means the scorer keeps no reusable parts; the evaluation engine then scores
    /// every variant from scratch (still arena-native when [`score_span`] is implemented).
    ///
    /// [`score_span`]: RegularityScorer::score_span
    fn score_span_stats(
        &self,
        _dataset: &Dataset,
        _template: &StructureTemplate,
        _parse: &SpanParse,
    ) -> Option<(f64, ScoreParts)> {
        None
    }

    /// Incremental scoring of a refinement variant against its parent's retained
    /// [`ScoreParts`]: `reuse[c] == Some(p)` asserts variant column `c` has *exactly* the
    /// parent column `p`'s cell multiset (the delta parser proves this before calling), so
    /// its aggregate may be copied; `None` columns must be recomputed from `parse`.
    ///
    /// Implementations must return exactly the value [`RegularityScorer::score`] would
    /// return on the materialized parse (the bit-identity contract of the span paths);
    /// returning `None` (the default) makes the engine fall back to a full scoring pass.
    fn score_span_delta(
        &self,
        _dataset: &Dataset,
        _template: &StructureTemplate,
        _parse: &SpanParse,
        _parent: &ScoreParts,
        _reuse: &[Option<u32>],
    ) -> Option<(f64, ScoreParts)> {
        None
    }

    /// Scores a *set* of structure templates (the structural component `S` of Problem 2)
    /// against a dataset, given a segmentation obtained by parsing with all of them.
    ///
    /// The pipeline uses this to compare complete multi-record-type solutions when handling
    /// interleaved datasets.  The default implementation charges every template's description,
    /// all noise verbatim, and every record through its own template.
    fn score_set(
        &self,
        dataset: &Dataset,
        templates: &[StructureTemplate],
        parse: &ParseResult,
    ) -> f64 {
        let mut bits = 32.0 + parse.block_count() as f64 + parse.noise_bytes as f64 * 8.0;
        for (idx, t) in templates.iter().enumerate() {
            bits += t.description_chars() as f64 * 8.0;
            bits += fields_bits(dataset, t, parse, idx);
        }
        bits
    }

    /// Human-readable name of the scorer (for reports).
    fn name(&self) -> &'static str {
        "scorer"
    }
}

/// Description length of all field values of records of `template_index`, including the
/// per-column model parameters (shared helper for single- and multi-template scoring).
fn fields_bits(
    dataset: &Dataset,
    template: &StructureTemplate,
    parse: &ParseResult,
    template_index: usize,
) -> f64 {
    let n_columns = template.field_count();
    let column_values = parse.column_values(dataset, template_index, n_columns);
    let types: Vec<FieldType> = column_values.iter().map(|vals| infer(vals)).collect();
    let mut bits = 0.0;
    for (t, vals) in types.iter().zip(&column_values) {
        bits += t.model_bits(vals);
    }
    let text = dataset.text();
    for rec in parse
        .records
        .iter()
        .filter(|r| r.template_index == template_index)
    {
        for value in &rec.values {
            bits += describe_value(text, value, &types);
        }
    }
    bits
}

/// Per-column MDL inference state, driven straight over the cell arena (no per-column
/// value vectors) — the unit of reuse of the delta scorer: a column whose cell multiset is
/// unchanged between a refinement variant and its parent has an *identical* `ColumnStats`,
/// so [`MdlScorer::score_span_delta`] clones it instead of re-scanning the column.
///
/// The fused accumulation passes are the exact-arithmetic equivalent of
/// `infer(vals)` + `FieldType::model_bits(vals)` + `Σ bits_per_value(v)` per column, minus
/// the tree path's redundancy: numeric columns parse once (the legacy pair parses them
/// twice) and the enum dictionary is built once in an Fx-hashed set (the legacy pair builds
/// two SipHash sets).  Hasher choice and pass structure cannot change the result: set
/// membership is hasher-independent, min/max/exp folds are order-independent, and every bit
/// term is an integer-valued `f64` summed far below 2^53.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnStats {
    count: usize,
    int_ok: bool,
    imin: i64,
    imax: i64,
    real_ok: bool,
    rmin: f64,
    rmax: f64,
    exp: u32,
    dict_bits: f64,
    string_cost: f64,
    distinct: usize,
}

impl Default for ColumnStats {
    fn default() -> Self {
        ColumnStats {
            count: 0,
            int_ok: true,
            imin: i64::MAX,
            imax: i64::MIN,
            real_ok: true,
            rmin: f64::INFINITY,
            rmax: f64::NEG_INFINITY,
            exp: 0,
            dict_bits: 0.0,
            string_cost: 0.0,
            distinct: 0,
        }
    }
}

/// The retainable by-product of one arena-native MDL scoring pass: one [`ColumnStats`] per
/// template column.  The refiner keeps the parts of the current refinement parent so that
/// variant evaluations can reuse the aggregates of structurally unchanged columns.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScoreParts {
    cols: Vec<ColumnStats>,
}

impl ScoreParts {
    /// Number of columns the parts were computed over.
    pub fn column_count(&self) -> usize {
        self.cols.len()
    }
}

/// Runs the fused inference passes over the cell arena, updating only the columns marked
/// `active` (inactive columns hold final aggregates reused from a parent evaluation and
/// must not be touched).  Restricting the passes to a column subset cannot change any
/// column's result — each column's aggregate depends only on its own cells.
fn accumulate_column_stats(
    text: &str,
    parse: &SpanParse,
    template_index: usize,
    n_columns: usize,
    active: &[bool],
    cols: &mut [ColumnStats],
) {
    let cells = || {
        parse
            .records
            .iter()
            .filter(move |r| r.template_index as usize == template_index)
            .flat_map(|r| parse.record_cells(r))
            .filter(|cell| cell.column < n_columns && active[cell.column])
    };

    // Pass 1: counts + integer attempt.
    for cell in cells() {
        let col = &mut cols[cell.column];
        col.count += 1;
        if col.int_ok {
            match parse_integer_single_scan(&text[cell.start..cell.end]) {
                Some(x) => {
                    col.imin = col.imin.min(x);
                    col.imax = col.imax.max(x);
                }
                None => col.int_ok = false,
            }
        }
    }
    // Pass 2 (only when some active column fell out of the integer type): real attempt.
    if cols.iter().zip(active).any(|(c, &a)| a && !c.int_ok) {
        for cell in cells() {
            let col = &mut cols[cell.column];
            if col.int_ok || !col.real_ok {
                continue;
            }
            match parse_real(&text[cell.start..cell.end]) {
                Some((x, e)) => {
                    col.rmin = col.rmin.min(x);
                    col.rmax = col.rmax.max(x);
                    col.exp = col.exp.max(e);
                }
                None => col.real_ok = false,
            }
        }
    }
    // Pass 3 (only when some active column is non-numeric): enum dictionary / string mass.
    if cols
        .iter()
        .zip(active)
        .any(|(c, &a)| a && !c.int_ok && !c.real_ok)
    {
        let mut sets: Vec<FxHashSet<&str>> = vec![FxHashSet::default(); n_columns];
        for cell in cells() {
            let col = &mut cols[cell.column];
            if col.int_ok || col.real_ok {
                continue;
            }
            let v = &text[cell.start..cell.end];
            let v_bits = (v.len() as f64 + 1.0) * 8.0;
            col.string_cost += v_bits;
            if sets[cell.column].insert(v) {
                col.dict_bits += v_bits;
                col.distinct += 1;
            }
        }
    }
}

/// Folds per-column aggregates plus the array-count term into the total field-description
/// length.  Column order is fixed (0..n) and every term is an integer-valued `f64`, so the
/// fold is bit-identical no matter how the aggregates were obtained (fresh scan or reuse).
fn fold_column_bits(cols: &[ColumnStats], array_instances: usize) -> f64 {
    let mut model = 0.0;
    let mut describe = 0.0;
    for col in cols {
        if col.count == 0 {
            // `infer` types an empty column as String (model: 8 bits, nothing to describe).
            model += 8.0;
            continue;
        }
        let count = col.count as f64;
        if col.int_ok {
            let t = FieldType::Integer {
                min: col.imin,
                max: col.imax,
            };
            model += t.model_bits(&[]);
            describe += t.bits_per_value("") * count;
        } else if col.real_ok {
            let t = FieldType::Real {
                min: col.rmin,
                max: col.rmax,
                exp: col.exp,
            };
            model += t.model_bits(&[]);
            describe += t.bits_per_value("") * count;
        } else {
            // Enumerated vs free text: the same total-description comparison as `infer`.
            let index_bits = (col.distinct.max(1) as f64).log2().ceil().max(1.0);
            let enum_cost = col.dict_bits + count * index_bits;
            if col.distinct < col.count && enum_cost < col.string_cost {
                // model_bits(Enumerated) is the dictionary; bits_per_value is the index.
                model += col.dict_bits;
                describe += index_bits * count;
            } else {
                // model_bits(String) is 8; each value is described character by character.
                model += 8.0;
                describe += col.string_cost;
            }
        }
    }
    model + ARRAY_COUNT_BITS * array_instances as f64 + describe
}

/// Total repetition-count slots of records of `template_index` (one [`ARRAY_COUNT_BITS`]
/// charge each).
fn array_instances(parse: &SpanParse, template_index: usize) -> usize {
    parse
        .records
        .iter()
        .filter(|r| r.template_index as usize == template_index)
        .map(|r| (r.rep_range.1 - r.rep_range.0) as usize)
        .sum()
}

/// Description length of all field values of records of `template_index`, computed directly
/// from the span arenas — the arena-native mirror of [`fields_bits`].
///
/// Every MDL term is an integer-valued `f64` (ceil'd logarithms, multiples of 8, the array
/// count constant), and every partial sum stays far below 2^53, so f64 addition is exact and
/// order-independent.  That lets the per-cell tree walk of [`describe_value`] collapse into
/// per-column aggregates ([`ColumnStats`]), with the type inference, model and per-value
/// charges fused into single-parse passes over the cell arena — while returning the
/// *bit-identical* value (enforced by the evaluation differential suite).
pub(crate) fn fields_bits_span(
    dataset: &Dataset,
    template: &StructureTemplate,
    parse: &SpanParse,
    template_index: usize,
) -> f64 {
    fields_bits_span_stats(dataset, template, parse, template_index).0
}

/// [`fields_bits_span`] that also returns the per-column aggregates for later reuse.
fn fields_bits_span_stats(
    dataset: &Dataset,
    template: &StructureTemplate,
    parse: &SpanParse,
    template_index: usize,
) -> (f64, ScoreParts) {
    let n_columns = template.field_count();
    let mut cols = vec![ColumnStats::default(); n_columns];
    let active = vec![true; n_columns];
    accumulate_column_stats(
        dataset.text(),
        parse,
        template_index,
        n_columns,
        &active,
        &mut cols,
    );
    let bits = fold_column_bits(&cols, array_instances(parse, template_index));
    (bits, ScoreParts { cols })
}

/// The incremental counterpart of [`fields_bits_span_stats`]: variant columns mapped to an
/// unchanged parent column by `reuse` clone the parent's aggregate; only the remaining
/// (dirty) columns are scanned.  Bit-identical to the full pass because an unchanged
/// column's aggregate is value-identical and the fold is shared.
fn fields_bits_span_delta(
    dataset: &Dataset,
    template: &StructureTemplate,
    parse: &SpanParse,
    template_index: usize,
    parent: &ScoreParts,
    reuse: &[Option<u32>],
) -> Option<(f64, ScoreParts)> {
    let n_columns = template.field_count();
    if reuse.len() != n_columns {
        return None;
    }
    let mut cols = Vec::with_capacity(n_columns);
    let mut active = Vec::with_capacity(n_columns);
    for slot in reuse {
        match slot {
            Some(p) => {
                cols.push(parent.cols.get(*p as usize)?.clone());
                active.push(false);
            }
            None => {
                cols.push(ColumnStats::default());
                active.push(true);
            }
        }
    }
    accumulate_column_stats(
        dataset.text(),
        parse,
        template_index,
        n_columns,
        &active,
        &mut cols,
    );
    let bits = fold_column_bits(&cols, array_instances(parse, template_index));
    Some((bits, ScoreParts { cols }))
}

/// Single-scan equivalent of [`parse_integer`] for the span scoring hot loop.
///
/// [`parse_integer`] scans each value three times (digit check, then `str::parse` re-scans
/// with its own validation); this accumulates in one pass.  The result is identical for
/// every input: same trimming, same `-`-only sign handling (no `+`), same all-digit
/// requirement, and the same overflow envelope — accumulation is negative so `i64::MIN`
/// parses while `2^63` overflows to `None`, exactly like `str::parse::<i64>` (equivalence
/// is property-tested against the original).
fn parse_integer_single_scan(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    if body.is_empty() {
        return None;
    }
    let mut acc: i64 = 0;
    for b in body.bytes() {
        if !b.is_ascii_digit() {
            return None;
        }
        acc = acc.checked_mul(10)?.checked_sub(i64::from(b - b'0'))?;
    }
    if neg {
        Some(acc)
    } else {
        acc.checked_neg()
    }
}

/// The minimum-description-length scorer of Appendix 9.2.
#[derive(Clone, Copy, Debug, Default)]
pub struct MdlScorer;

impl MdlScorer {
    /// Infers the per-column data types from the values a parse extracted.
    pub fn column_types(
        &self,
        dataset: &Dataset,
        template: &StructureTemplate,
        parse: &ParseResult,
        template_index: usize,
    ) -> Vec<FieldType> {
        let n_columns = template.field_count();
        parse
            .column_values(dataset, template_index, n_columns)
            .iter()
            .map(|vals| infer(vals))
            .collect()
    }
}

impl RegularityScorer for MdlScorer {
    fn score(&self, dataset: &Dataset, template: &StructureTemplate, parse: &ParseResult) -> f64 {
        // Template description plus per-block record/noise indicator.
        let mut bits = template.description_chars() as f64 * 8.0 + HEADER_BITS;
        bits += parse.block_count() as f64;

        // Noise blocks are described verbatim.
        bits += parse.noise_bytes as f64 * 8.0;

        // Records are described through the template, with per-column data types and model
        // parameters (enum dictionaries, numeric ranges).
        bits += fields_bits(dataset, template, parse, 0);
        bits
    }

    fn score_span(
        &self,
        dataset: &Dataset,
        template: &StructureTemplate,
        parse: &SpanParse,
    ) -> Option<f64> {
        let mut bits = template.description_chars() as f64 * 8.0 + HEADER_BITS;
        bits += parse.block_count() as f64;
        bits += parse.noise_bytes as f64 * 8.0;
        bits += fields_bits_span(dataset, template, parse, 0);
        Some(bits)
    }

    fn score_span_stats(
        &self,
        dataset: &Dataset,
        template: &StructureTemplate,
        parse: &SpanParse,
    ) -> Option<(f64, ScoreParts)> {
        let mut bits = template.description_chars() as f64 * 8.0 + HEADER_BITS;
        bits += parse.block_count() as f64;
        bits += parse.noise_bytes as f64 * 8.0;
        let (fields, parts) = fields_bits_span_stats(dataset, template, parse, 0);
        Some((bits + fields, parts))
    }

    fn score_span_delta(
        &self,
        dataset: &Dataset,
        template: &StructureTemplate,
        parse: &SpanParse,
        parent: &ScoreParts,
        reuse: &[Option<u32>],
    ) -> Option<(f64, ScoreParts)> {
        // The template / block-count / noise terms are cheap and read from the actual delta
        // parse; only the per-column field aggregation is incremental.
        let mut bits = template.description_chars() as f64 * 8.0 + HEADER_BITS;
        bits += parse.block_count() as f64;
        bits += parse.noise_bytes as f64 * 8.0;
        let (fields, parts) = fields_bits_span_delta(dataset, template, parse, 0, parent, reuse)?;
        Some((bits + fields, parts))
    }

    fn name(&self) -> &'static str {
        "mdl"
    }
}

/// Description length of one instantiation subtree.
fn describe_value(text: &str, value: &ValueTree, types: &[FieldType]) -> f64 {
    match value {
        ValueTree::Literal => 0.0,
        ValueTree::Field { column, start, end } => {
            let v = &text[*start..*end];
            match types.get(*column) {
                Some(t) => t.bits_per_value(v),
                None => FieldType::String.bits_per_value(v),
            }
        }
        ValueTree::Array { groups, .. } => {
            let mut bits = ARRAY_COUNT_BITS;
            for group in groups {
                for v in group {
                    bits += describe_value(text, v, types);
                }
            }
            bits
        }
    }
}

/// A trivial scorer that only rewards record coverage (used in tests and as an example of the
/// pluggable-score design).  Lower is better, so it returns the number of uncovered bytes.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoverageScorer;

impl RegularityScorer for CoverageScorer {
    fn score(&self, dataset: &Dataset, _template: &StructureTemplate, parse: &ParseResult) -> f64 {
        (dataset.len() - parse.record_bytes.min(dataset.len())) as f64
    }

    fn score_span(
        &self,
        dataset: &Dataset,
        _template: &StructureTemplate,
        parse: &SpanParse,
    ) -> Option<f64> {
        Some((dataset.len() - parse.record_bytes.min(dataset.len())) as f64)
    }

    fn name(&self) -> &'static str {
        "coverage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chars::CharSet;
    use crate::fieldtype::parse_integer;
    use crate::parser::parse_dataset;
    use crate::record::RecordTemplate;
    use crate::reduce::reduce;

    fn template(example: &str, charset: &str) -> StructureTemplate {
        let cs = CharSet::from_chars(charset.chars());
        StructureTemplate::from_record_template(&RecordTemplate::from_instantiated(example, &cs))
    }

    fn score_on(data: &str, st: &StructureTemplate) -> f64 {
        let dataset = Dataset::new(data);
        let parse = parse_dataset(&dataset, std::slice::from_ref(st), 10);
        MdlScorer.score(&dataset, st, &parse)
    }

    #[test]
    fn structured_template_beats_trivial_whole_line_field() {
        let mut data = String::new();
        for i in 0..50 {
            data.push_str(&format!(
                "[{:02}:{:02}] 10.0.0.{}\n",
                i % 24,
                i % 60,
                i % 200
            ));
        }
        // Structured template: recognises brackets, colon, dot and space.
        let good = template("[01:05] 10.0.0.1\n", "[]:. \n");
        // Trivial template: the whole line is one field.
        let trivial = template("whatever\n", "\n");
        let good_score = score_on(&data, &good);
        let trivial_score = score_on(&data, &trivial);
        assert!(
            good_score < trivial_score,
            "good {good_score} should beat trivial {trivial_score}"
        );
    }

    #[test]
    fn noise_is_charged_verbatim() {
        let structured = "a=1\na=2\na=3\na=4\n";
        let with_noise = "a=1\na=2\n!!!! totally unstructured noise line !!!!\na=3\na=4\n";
        let st = template("a=1\n", "=\n");
        let clean = score_on(structured, &st);
        let noisy = score_on(with_noise, &st);
        assert!(noisy > clean + 8.0 * 20.0, "noise must cost ~8 bits/byte");
    }

    #[test]
    fn integer_columns_cost_less_than_string_columns() {
        let mut numeric = String::new();
        let mut texty = String::new();
        for i in 0..40 {
            numeric.push_str(&format!("{},{}\n", i, i * 2));
            texty.push_str(&format!("astringvalue{i},anotherstring{i}\n"));
        }
        let st = template("1,2\n", ",\n");
        assert!(score_on(&numeric, &st) < score_on(&texty, &st));
    }

    #[test]
    fn struct_template_beats_array_template_for_fixed_width_csv() {
        // §4.3.1: for a fixed number of typed columns, the unfolded struct template scores
        // better than the folded (F,)*F\n array template because each column gets its own
        // (cheap) data type instead of one shared string-ish type plus repetition counts.
        let mut data = String::new();
        for i in 0..60 {
            data.push_str(&format!("{},{},{}\n", i, 1000 + i, (i * 37) % 7));
        }
        let dataset = Dataset::new(data);
        let struct_t = template("1,2,3\n", ",\n");
        let array_t = reduce(&RecordTemplate::from_instantiated(
            "1,2,3\n",
            &CharSet::from_chars(",\n".chars()),
        ));
        let sp = parse_dataset(&dataset, std::slice::from_ref(&struct_t), 10);
        let ap = parse_dataset(&dataset, std::slice::from_ref(&array_t), 10);
        let s_score = MdlScorer.score(&dataset, &struct_t, &sp);
        let a_score = MdlScorer.score(&dataset, &array_t, &ap);
        assert!(
            s_score < a_score,
            "struct {s_score} should beat array {a_score}"
        );
    }

    #[test]
    fn column_types_reports_inferred_types() {
        let data = Dataset::new("1,INFO,3.5\n2,WARN,4.25\n3,INFO,0.5\n4,INFO,1.0\n");
        let st = template("1,INFO,3.5\n", ",\n");
        let parse = parse_dataset(&data, std::slice::from_ref(&st), 10);
        let types = MdlScorer.column_types(&data, &st, &parse, 0);
        assert_eq!(types.len(), 3);
        assert_eq!(types[0].name(), "int");
        assert_eq!(types[1].name(), "enum");
        assert_eq!(types[2].name(), "real");
    }

    #[test]
    fn single_scan_integer_parse_matches_original() {
        let cases = [
            "0",
            "7",
            "-7",
            "007",
            "  42  ",
            "+5",
            "",
            "-",
            "--3",
            "1.5",
            "12a",
            "a12",
            "9223372036854775807",
            "-9223372036854775808",
            "9223372036854775808",
            "-9223372036854775809",
            "99999999999999999999999",
            " -0 ",
            "\t10\n",
            "１２",
        ];
        for case in cases {
            assert_eq!(
                parse_integer_single_scan(case),
                parse_integer(case),
                "input {case:?}"
            );
        }
    }

    #[test]
    fn span_fields_bits_matches_tree_walker_bit_for_bit() {
        use crate::extract::parse_dataset_span;
        // Integer, real, enum, free-text and array columns in one corpus.
        let mut data = String::new();
        let words = ["alpha", "beta", "gamma delta", "unique-0", "unique-1"];
        for i in 0..40 {
            data.push_str(&format!(
                "{},{}.5,{},{}\n",
                i,
                i * 3,
                ["INFO", "WARN"][i % 2],
                words[i % words.len()]
            ));
        }
        data.push_str("1,2,3\n4,5\n");
        let dataset = Dataset::new(data);
        for st in [
            template("1,2.5,INFO,x\n", ",\n"),
            reduce(&RecordTemplate::from_instantiated(
                "1,2,3\n",
                &CharSet::from_chars(",\n".chars()),
            )),
        ] {
            let legacy = parse_dataset(&dataset, std::slice::from_ref(&st), 10);
            let span = parse_dataset_span(&dataset, std::slice::from_ref(&st), 10);
            let tree_score = MdlScorer.score(&dataset, &st, &legacy);
            let span_score = MdlScorer
                .score_span(&dataset, &st, &span)
                .expect("mdl has a span path");
            assert_eq!(
                span_score.to_bits(),
                tree_score.to_bits(),
                "template {st}: {span_score} vs {tree_score}"
            );
        }
    }

    #[test]
    fn coverage_scorer_prefers_higher_coverage() {
        let data = Dataset::new("a=1\nnoise\na=2\n");
        let st = template("a=1\n", "=\n");
        let dataset = &data;
        let parse = parse_dataset(dataset, std::slice::from_ref(&st), 10);
        let empty = ParseResult::default();
        assert!(
            CoverageScorer.score(dataset, &st, &parse) < CoverageScorer.score(dataset, &st, &empty)
        );
        assert_eq!(CoverageScorer.name(), "coverage");
        assert_eq!(MdlScorer.name(), "mdl");
    }
}
