//! The default regularity score: minimum description length (Appendix 9.2, Algorithm 2).
//!
//! The regularity score function `F(T, S)` is pluggable in Datamaran; the implementation the
//! paper (and this crate) ships computes the total number of bits needed to describe the
//! dataset given the structure template: the template itself, a record/noise indicator per
//! block, each noise block verbatim, and each record through the template with per-column
//! data types (enumerated / integer / real / string).  Lower is better.

use crate::dataset::Dataset;
use crate::fieldtype::{infer, FieldType};
use crate::parser::{ParseResult, ValueTree};
use crate::structure::StructureTemplate;

/// Bits charged for describing the repetition count of one array instance.
const ARRAY_COUNT_BITS: f64 = 16.0;

/// Bits charged for the block-count header (the `32` of the formula in Appendix 9.2).
const HEADER_BITS: f64 = 32.0;

/// A pluggable regularity score function `F(T, S)`.
///
/// Scores are *description lengths*: lower values indicate more plausible structures.  Any
/// implementation can be plugged into the evaluation step, as stressed in §4 ("The design of
/// Datamaran is independent of the choice of this scoring function").
pub trait RegularityScorer {
    /// Scores a structure template against a dataset given the segmentation produced by the
    /// extraction parser.  Lower is better.
    fn score(&self, dataset: &Dataset, template: &StructureTemplate, parse: &ParseResult) -> f64;

    /// Scores a *set* of structure templates (the structural component `S` of Problem 2)
    /// against a dataset, given a segmentation obtained by parsing with all of them.
    ///
    /// The pipeline uses this to compare complete multi-record-type solutions when handling
    /// interleaved datasets.  The default implementation charges every template's description,
    /// all noise verbatim, and every record through its own template.
    fn score_set(
        &self,
        dataset: &Dataset,
        templates: &[StructureTemplate],
        parse: &ParseResult,
    ) -> f64 {
        let mut bits = 32.0 + parse.block_count() as f64 + parse.noise_bytes as f64 * 8.0;
        for (idx, t) in templates.iter().enumerate() {
            bits += t.description_chars() as f64 * 8.0;
            bits += fields_bits(dataset, t, parse, idx);
        }
        bits
    }

    /// Human-readable name of the scorer (for reports).
    fn name(&self) -> &'static str {
        "scorer"
    }
}

/// Description length of all field values of records of `template_index`, including the
/// per-column model parameters (shared helper for single- and multi-template scoring).
fn fields_bits(
    dataset: &Dataset,
    template: &StructureTemplate,
    parse: &ParseResult,
    template_index: usize,
) -> f64 {
    let n_columns = template.field_count();
    let column_values = parse.column_values(dataset, template_index, n_columns);
    let types: Vec<FieldType> = column_values.iter().map(|vals| infer(vals)).collect();
    let mut bits = 0.0;
    for (t, vals) in types.iter().zip(&column_values) {
        bits += t.model_bits(vals);
    }
    let text = dataset.text();
    for rec in parse
        .records
        .iter()
        .filter(|r| r.template_index == template_index)
    {
        for value in &rec.values {
            bits += describe_value(text, value, &types);
        }
    }
    bits
}

/// The minimum-description-length scorer of Appendix 9.2.
#[derive(Clone, Copy, Debug, Default)]
pub struct MdlScorer;

impl MdlScorer {
    /// Infers the per-column data types from the values a parse extracted.
    pub fn column_types(
        &self,
        dataset: &Dataset,
        template: &StructureTemplate,
        parse: &ParseResult,
        template_index: usize,
    ) -> Vec<FieldType> {
        let n_columns = template.field_count();
        parse
            .column_values(dataset, template_index, n_columns)
            .iter()
            .map(|vals| infer(vals))
            .collect()
    }
}

impl RegularityScorer for MdlScorer {
    fn score(&self, dataset: &Dataset, template: &StructureTemplate, parse: &ParseResult) -> f64 {
        // Template description plus per-block record/noise indicator.
        let mut bits = template.description_chars() as f64 * 8.0 + HEADER_BITS;
        bits += parse.block_count() as f64;

        // Noise blocks are described verbatim.
        bits += parse.noise_bytes as f64 * 8.0;

        // Records are described through the template, with per-column data types and model
        // parameters (enum dictionaries, numeric ranges).
        bits += fields_bits(dataset, template, parse, 0);
        bits
    }

    fn name(&self) -> &'static str {
        "mdl"
    }
}

/// Description length of one instantiation subtree.
fn describe_value(text: &str, value: &ValueTree, types: &[FieldType]) -> f64 {
    match value {
        ValueTree::Literal => 0.0,
        ValueTree::Field { column, start, end } => {
            let v = &text[*start..*end];
            match types.get(*column) {
                Some(t) => t.bits_per_value(v),
                None => FieldType::String.bits_per_value(v),
            }
        }
        ValueTree::Array { groups, .. } => {
            let mut bits = ARRAY_COUNT_BITS;
            for group in groups {
                for v in group {
                    bits += describe_value(text, v, types);
                }
            }
            bits
        }
    }
}

/// A trivial scorer that only rewards record coverage (used in tests and as an example of the
/// pluggable-score design).  Lower is better, so it returns the number of uncovered bytes.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoverageScorer;

impl RegularityScorer for CoverageScorer {
    fn score(&self, dataset: &Dataset, _template: &StructureTemplate, parse: &ParseResult) -> f64 {
        (dataset.len() - parse.record_bytes.min(dataset.len())) as f64
    }

    fn name(&self) -> &'static str {
        "coverage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chars::CharSet;
    use crate::parser::parse_dataset;
    use crate::record::RecordTemplate;
    use crate::reduce::reduce;

    fn template(example: &str, charset: &str) -> StructureTemplate {
        let cs = CharSet::from_chars(charset.chars());
        StructureTemplate::from_record_template(&RecordTemplate::from_instantiated(example, &cs))
    }

    fn score_on(data: &str, st: &StructureTemplate) -> f64 {
        let dataset = Dataset::new(data);
        let parse = parse_dataset(&dataset, std::slice::from_ref(st), 10);
        MdlScorer.score(&dataset, st, &parse)
    }

    #[test]
    fn structured_template_beats_trivial_whole_line_field() {
        let mut data = String::new();
        for i in 0..50 {
            data.push_str(&format!(
                "[{:02}:{:02}] 10.0.0.{}\n",
                i % 24,
                i % 60,
                i % 200
            ));
        }
        // Structured template: recognises brackets, colon, dot and space.
        let good = template("[01:05] 10.0.0.1\n", "[]:. \n");
        // Trivial template: the whole line is one field.
        let trivial = template("whatever\n", "\n");
        let good_score = score_on(&data, &good);
        let trivial_score = score_on(&data, &trivial);
        assert!(
            good_score < trivial_score,
            "good {good_score} should beat trivial {trivial_score}"
        );
    }

    #[test]
    fn noise_is_charged_verbatim() {
        let structured = "a=1\na=2\na=3\na=4\n";
        let with_noise = "a=1\na=2\n!!!! totally unstructured noise line !!!!\na=3\na=4\n";
        let st = template("a=1\n", "=\n");
        let clean = score_on(structured, &st);
        let noisy = score_on(with_noise, &st);
        assert!(noisy > clean + 8.0 * 20.0, "noise must cost ~8 bits/byte");
    }

    #[test]
    fn integer_columns_cost_less_than_string_columns() {
        let mut numeric = String::new();
        let mut texty = String::new();
        for i in 0..40 {
            numeric.push_str(&format!("{},{}\n", i, i * 2));
            texty.push_str(&format!("astringvalue{i},anotherstring{i}\n"));
        }
        let st = template("1,2\n", ",\n");
        assert!(score_on(&numeric, &st) < score_on(&texty, &st));
    }

    #[test]
    fn struct_template_beats_array_template_for_fixed_width_csv() {
        // §4.3.1: for a fixed number of typed columns, the unfolded struct template scores
        // better than the folded (F,)*F\n array template because each column gets its own
        // (cheap) data type instead of one shared string-ish type plus repetition counts.
        let mut data = String::new();
        for i in 0..60 {
            data.push_str(&format!("{},{},{}\n", i, 1000 + i, (i * 37) % 7));
        }
        let dataset = Dataset::new(data);
        let struct_t = template("1,2,3\n", ",\n");
        let array_t = reduce(&RecordTemplate::from_instantiated(
            "1,2,3\n",
            &CharSet::from_chars(",\n".chars()),
        ));
        let sp = parse_dataset(&dataset, std::slice::from_ref(&struct_t), 10);
        let ap = parse_dataset(&dataset, std::slice::from_ref(&array_t), 10);
        let s_score = MdlScorer.score(&dataset, &struct_t, &sp);
        let a_score = MdlScorer.score(&dataset, &array_t, &ap);
        assert!(
            s_score < a_score,
            "struct {s_score} should beat array {a_score}"
        );
    }

    #[test]
    fn column_types_reports_inferred_types() {
        let data = Dataset::new("1,INFO,3.5\n2,WARN,4.25\n3,INFO,0.5\n4,INFO,1.0\n");
        let st = template("1,INFO,3.5\n", ",\n");
        let parse = parse_dataset(&data, std::slice::from_ref(&st), 10);
        let types = MdlScorer.column_types(&data, &st, &parse, 0);
        assert_eq!(types.len(), 3);
        assert_eq!(types[0].name(), "int");
        assert_eq!(types[1].name(), "enum");
        assert_eq!(types[2].name(), "real");
    }

    #[test]
    fn coverage_scorer_prefers_higher_coverage() {
        let data = Dataset::new("a=1\nnoise\na=2\n");
        let st = template("a=1\n", "=\n");
        let dataset = &data;
        let parse = parse_dataset(dataset, std::slice::from_ref(&st), 10);
        let empty = ParseResult::default();
        assert!(
            CoverageScorer.score(dataset, &st, &parse) < CoverageScorer.score(dataset, &st, &empty)
        );
        assert_eq!(CoverageScorer.name(), "coverage");
        assert_eq!(MdlScorer.name(), "mdl");
    }
}
