//! Zero-copy span tokenization for the generation hot path.
//!
//! The generation step (§4.1, Algorithm 1) historically re-tokenized every sampled line for
//! every enumerated `RT-CharSet` value — `2^c` passes over the sample for the exhaustive
//! search.  This module replaces those passes with a **single** tokenization pass under the
//! *superset* charset (every candidate character present in the sample) followed by cheap
//! per-charset *projections*:
//!
//! * [`LineIndex::build`] scans the sample once, records the formatting-character
//!   occurrence pattern of every line, and collapses lines with identical patterns into
//!   **shape classes** (log lines repeat heavily, so a sample has orders of magnitude fewer
//!   classes than lines).  Field *content* is never copied — only patterns are kept.
//! * [`LineIndex::project_class`] derives a class's record-template token sequence under any
//!   subset charset in `O(#occurrences)`: member characters are kept, non-member characters
//!   are demoted back into field content (merging with the neighbouring runs), and no
//!   per-token heap allocation happens (tokens are appended to a caller-owned buffer).
//!   Projecting per *class* instead of per line makes a whole-sample projection
//!   `O(#classes × pattern length + #lines)`.
//! * [`LineIndex::field_bytes`] computes the per-line field-byte count under a subset from
//!   the class's kept-byte total, replacing a full rescan of the line.
//!
//! The module also exposes the span-level view itself ([`SpanToken`], [`tokenize_spans`],
//! [`field_spans`]): tokens that borrow the tokenized text as `Range<u32>` byte spans
//! instead of owning copies, which is what keeps the per-record inner loop allocation-free.

use crate::chars::CharSet;
use crate::dataset::Dataset;
use crate::fxhash::FxHashMap;
use crate::record::TemplateToken;
use std::ops::Range;

/// The kind of a [`SpanToken`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SpanTokenKind {
    /// A maximal run of field (non-formatting) bytes.
    Field,
    /// One formatting character.
    Ch(char),
}

/// One token of a tokenized line: its kind plus the byte span it occupies in the source
/// text.  Unlike [`TemplateToken`]-based tokenization paired with owned field strings, a
/// `SpanToken` never copies text — consumers slice the original dataset on demand.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpanToken {
    /// What the span contains.
    pub kind: SpanTokenKind,
    /// Byte span `[start, end)` into the tokenized text.
    pub span: Range<u32>,
}

impl SpanToken {
    /// The spanned slice of `text`.
    pub fn slice<'t>(&self, text: &'t str) -> &'t str {
        &text[self.span.start as usize..self.span.end as usize]
    }
}

/// Tokenizes `text` under `charset`, appending one [`SpanToken`] per formatting character
/// and per maximal field run to `out`.  Zero-copy and allocation-free apart from `out`'s
/// amortized growth; equivalent to `RecordTemplate::from_instantiated` plus
/// `field_values`, but without materializing any string.
pub fn tokenize_spans(text: &str, charset: &CharSet, out: &mut Vec<SpanToken>) {
    assert!(
        text.len() <= u32::MAX as usize,
        "span tokenization is limited to texts under 4 GiB"
    );
    let mut field_start: Option<u32> = None;
    for (i, c) in text.char_indices() {
        if charset.contains(c) {
            if let Some(s) = field_start.take() {
                out.push(SpanToken {
                    kind: SpanTokenKind::Field,
                    span: s..i as u32,
                });
            }
            out.push(SpanToken {
                kind: SpanTokenKind::Ch(c),
                span: i as u32..(i + c.len_utf8()) as u32,
            });
        } else if field_start.is_none() {
            field_start = Some(i as u32);
        }
    }
    if let Some(s) = field_start {
        out.push(SpanToken {
            kind: SpanTokenKind::Field,
            span: s..text.len() as u32,
        });
    }
}

/// The byte spans of the field values of `text` under `charset` (Definition 2.2), borrowed
/// rather than copied.
pub fn field_spans(text: &str, charset: &CharSet) -> Vec<Range<u32>> {
    let mut tokens = Vec::new();
    tokenize_spans(text, charset, &mut tokens);
    tokens
        .into_iter()
        .filter(|t| t.kind == SpanTokenKind::Field)
        .map(|t| t.span)
        .collect()
}

/// One formatting-character occurrence of a shape class, packed into 16 bits:
/// code point (8) | utf8-length-minus-one (1) | gap-before flag (1).
///
/// The packing doubles as the class's hashable signature (with
/// [`TRAILING_GAP_SENTINEL`] appended), so the build pass interns each line with a single
/// small-slice hash.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct PackedOcc(u16);

impl PackedOcc {
    fn new(ch: u8, utf8_len: u8, gap_before: bool) -> Self {
        debug_assert!(utf8_len == 1 || utf8_len == 2);
        PackedOcc((ch as u16) | (((utf8_len - 1) as u16) << 8) | ((gap_before as u16) << 9))
    }

    fn ch(self) -> char {
        (self.0 & 0xFF) as u8 as char
    }

    fn utf8_len(self) -> usize {
        (((self.0 >> 8) & 1) + 1) as usize
    }

    fn gap_before(self) -> bool {
        self.0 & (1 << 9) != 0
    }
}

/// Signature terminator encoding the trailing-gap flag; distinct from every packed
/// occurrence (those are `<= 0x3FF`).
const TRAILING_GAP_SENTINEL: u16 = 0xFC00;

/// Per-line index of superset formatting-character occurrences, built once per sample and
/// shared (immutably) by every per-charset projection — including across worker threads.
///
/// Lines with identical occurrence patterns share a **shape class**; projections and
/// kept-byte totals are computed per class, per-line data is reduced to a class id and a
/// byte length.
#[derive(Clone, Debug, Default)]
pub struct LineIndex {
    /// Class-level occurrence arena.
    occs: Vec<PackedOcc>,
    /// `occs` range of class `c`: `class_offsets[c]..class_offsets[c + 1]`.
    class_offsets: Vec<u32>,
    /// Whether lines of class `c` end with a non-empty field run after the last occurrence.
    class_trailing_gap: Vec<bool>,
    /// Shape class of each line.
    line_class: Vec<u32>,
    /// Byte length of each line (including its trailing `\n` when present).
    line_len: Vec<u32>,
}

impl LineIndex {
    /// Scans every line of `sample` once, recording the occurrences of `superset` members
    /// and interning identical occurrence patterns into shape classes.
    pub fn build(sample: &Dataset, superset: &CharSet) -> LineIndex {
        let n = sample.line_count();
        let mut index = LineIndex {
            class_offsets: vec![0],
            line_class: Vec::with_capacity(n),
            line_len: Vec::with_capacity(n),
            ..Default::default()
        };
        let mut classes: FxHashMap<Box<[u16]>, u32> = FxHashMap::default();
        let mut signature: Vec<u16> = Vec::new();
        for i in 0..n {
            let line = sample.line(i);
            signature.clear();
            let mut gap = false;
            for c in line.chars() {
                if superset.contains(c) {
                    signature.push(PackedOcc::new(c as u8, c.len_utf8() as u8, gap).0);
                    gap = false;
                } else {
                    gap = true;
                }
            }
            signature.push(TRAILING_GAP_SENTINEL | gap as u16);
            let class = match classes.get(signature.as_slice()) {
                Some(&c) => c,
                None => {
                    let c = index.class_offsets.len() as u32 - 1;
                    index.occs.extend(
                        signature[..signature.len() - 1]
                            .iter()
                            .map(|&p| PackedOcc(p)),
                    );
                    index.class_offsets.push(index.occs.len() as u32);
                    index.class_trailing_gap.push(gap);
                    classes.insert(signature.as_slice().into(), c);
                    c
                }
            };
            index.line_class.push(class);
            index.line_len.push(line.len() as u32);
        }
        index
    }

    /// Number of indexed lines.
    pub fn line_count(&self) -> usize {
        self.line_len.len()
    }

    /// Number of distinct shape classes.
    pub fn class_count(&self) -> usize {
        self.class_trailing_gap.len()
    }

    /// Shape class of line `i`.
    pub fn class_of(&self, i: usize) -> u32 {
        self.line_class[i]
    }

    /// Byte length of line `i`.
    pub fn line_len(&self, i: usize) -> usize {
        self.line_len[i] as usize
    }

    fn class_occs(&self, c: u32) -> &[PackedOcc] {
        &self.occs
            [self.class_offsets[c as usize] as usize..self.class_offsets[c as usize + 1] as usize]
    }

    /// Appends class `c`'s record-template tokens under `subset` to `out`.
    ///
    /// Produces exactly the token sequence of
    /// `RecordTemplate::from_instantiated(line, subset)` for every line of the class:
    /// members of `subset` are kept as [`TemplateToken::Ch`]; everything else (field runs
    /// *and* demoted superset characters) merges into [`TemplateToken::Field`] runs.
    /// Multi-line candidate records are the concatenation of per-line projections,
    /// mirroring how the generation step has always assembled them.
    pub fn project_class(&self, c: u32, subset: &CharSet, out: &mut Vec<TemplateToken>) {
        let mut pending = false;
        for occ in self.class_occs(c) {
            pending |= occ.gap_before();
            if subset.contains(occ.ch()) {
                if pending {
                    out.push(TemplateToken::Field);
                    pending = false;
                }
                out.push(TemplateToken::Ch(occ.ch()));
            } else {
                // Demoted: the character itself becomes field content.
                pending = true;
            }
        }
        if pending | self.class_trailing_gap[c as usize] {
            out.push(TemplateToken::Field);
        }
    }

    /// Appends line `i`'s record-template tokens under `subset` to `out` (the per-line view
    /// of [`LineIndex::project_class`]).
    pub fn project_line(&self, i: usize, subset: &CharSet, out: &mut Vec<TemplateToken>) {
        self.project_class(self.line_class[i], subset, out);
    }

    /// Total bytes of the `subset` members occurring in lines of class `c`.
    pub fn class_kept_bytes(&self, c: u32, subset: &CharSet) -> usize {
        self.class_occs(c)
            .iter()
            .filter(|occ| subset.contains(occ.ch()))
            .map(|occ| occ.utf8_len())
            .sum()
    }

    /// Byte count of field content of line `i` under `subset`: the line length minus the
    /// bytes of the subset members occurring in it (equivalent to
    /// `record::field_char_len(line, subset)`).
    pub fn field_bytes(&self, i: usize, subset: &CharSet) -> usize {
        self.line_len(i) - self.class_kept_bytes(self.line_class[i], subset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordTemplate;

    fn cs(s: &str) -> CharSet {
        CharSet::from_chars(s.chars())
    }

    fn project_all(index: &LineIndex, subset: &CharSet, line: usize) -> Vec<TemplateToken> {
        let mut out = Vec::new();
        index.project_line(line, subset, &mut out);
        out
    }

    #[test]
    fn projection_matches_direct_tokenization() {
        let text = "[01:05] 10.0.0.1 GET /index\nplain words only\n=,=;\n\n[9] x\n";
        let sample = Dataset::new(text);
        let superset = cs("[]:. /=,;\n ");
        let index = LineIndex::build(&sample, &superset);
        for subset_str in ["\n", ",\n", "[]:\n", "[]:. \n", "=;\n", "[]:. /=,;\n "] {
            let subset = cs(subset_str);
            for i in 0..sample.line_count() {
                let expected = RecordTemplate::from_instantiated(sample.line(i), &subset);
                let got = project_all(&index, &subset, i);
                assert_eq!(got, expected.tokens(), "line {i:?} under {subset_str:?}");
            }
        }
    }

    #[test]
    fn field_bytes_match_field_char_len() {
        let text = "[01:05] 10.0.0.1 GET /index\nüber=schön\n";
        let sample = Dataset::new(text);
        let superset = cs("[]:. /=\n");
        let index = LineIndex::build(&sample, &superset);
        for subset_str in ["\n", "=\n", "[]:. /=\n"] {
            let subset = cs(subset_str);
            for i in 0..sample.line_count() {
                assert_eq!(
                    index.field_bytes(i, &subset),
                    crate::record::field_char_len(sample.line(i), &subset),
                    "line {i} under {subset_str:?}"
                );
            }
        }
    }

    #[test]
    fn identical_line_shapes_share_a_class() {
        let text = "1,2,3\n44,55,66\n7,8\nx,y,z\n";
        let sample = Dataset::new(text);
        let index = LineIndex::build(&sample, &cs(",\n"));
        // "1,2,3", "44,55,66" and "x,y,z" share an occurrence pattern; "7,8" does not.
        assert_eq!(index.class_count(), 2);
        assert_eq!(index.class_of(0), index.class_of(1));
        assert_eq!(index.class_of(0), index.class_of(3));
        assert_ne!(index.class_of(0), index.class_of(2));
        // Lengths stay per line even within a shared class.
        assert_eq!(index.line_len(0), 6);
        assert_eq!(index.line_len(1), 9);
    }

    #[test]
    fn latin1_two_byte_formatting_chars_are_tracked() {
        // '§' (U+00A7) is Latin-1 but 2 bytes in UTF-8; charsets may contain it.
        let text = "a§b§c\n";
        let sample = Dataset::new(text);
        let superset = cs("§\n");
        let index = LineIndex::build(&sample, &superset);
        assert_eq!(index.field_bytes(0, &superset), 3);
        let expected = RecordTemplate::from_instantiated("a§b§c\n", &superset);
        assert_eq!(project_all(&index, &superset, 0), expected.tokens());
    }

    #[test]
    fn span_tokens_cover_the_line_exactly() {
        let text = "a,bb;ccc\n";
        let charset = cs(",;\n");
        let mut tokens = Vec::new();
        tokenize_spans(text, &charset, &mut tokens);
        // Spans tile the text with no gaps or overlaps.
        let mut cursor = 0u32;
        for t in &tokens {
            assert_eq!(t.span.start, cursor);
            cursor = t.span.end;
        }
        assert_eq!(cursor as usize, text.len());
        let fields: Vec<&str> = tokens
            .iter()
            .filter(|t| t.kind == SpanTokenKind::Field)
            .map(|t| t.slice(text))
            .collect();
        assert_eq!(fields, vec!["a", "bb", "ccc"]);
    }

    #[test]
    fn field_spans_borrow_without_copying() {
        let text = "[01:05] 192.168.0.1\n";
        let spans = field_spans(text, &cs("[]: .\n"));
        let texts: Vec<&str> = spans
            .iter()
            .map(|r| &text[r.start as usize..r.end as usize])
            .collect();
        assert_eq!(texts, vec!["01", "05", "192", "168", "0", "1"]);
    }

    #[test]
    fn empty_dataset_builds_empty_index() {
        let sample = Dataset::new("");
        let index = LineIndex::build(&sample, &cs(",\n"));
        assert_eq!(index.line_count(), 0);
        assert_eq!(index.class_count(), 0);
    }
}
