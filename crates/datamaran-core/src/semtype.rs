//! Domain-specific (semantic) type awareness for extracted columns.
//!
//! The user study (§6.3) notes that Datamaran's output is deliberately fine-grained — an IP
//! address becomes four integer columns — and that "Datamaran should be enhanced with type
//! awareness (e.g., for phone numbers, IPs, URLs)" so that such values can be reported as a
//! single semantic unit.  This module implements that enhancement as a post-processing pass:
//!
//! * [`detect`] classifies a single string value into a [`SemanticType`];
//! * [`infer_column`] classifies a column from its values (majority vote with a confidence);
//! * [`annotate_table`] / [`annotate_result`] annotate a denormalized table or a whole
//!   [`ExtractionResult`], additionally recognizing runs of adjacent columns that together
//!   form one composite value (an IPv4 split into four octet columns, a `HH:MM:SS` time split
//!   into three columns) so downstream consumers can merge them back.
//!
//! All recognizers are hand-written scanners over ASCII text — no regex engine is needed and
//! values never allocate.

use crate::fieldtype::parse_integer;
use crate::pipeline::ExtractionResult;
use crate::relational::Table;

/// Semantic classification of a field value.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum SemanticType {
    /// A dotted-quad IPv4 address, e.g. `192.168.0.1`.
    IpV4,
    /// An IPv6 address in colon-hex notation.
    IpV6,
    /// A calendar date (`2018-06-10`, `2018/06/10`, or `10-06-2018`).
    Date,
    /// A wall-clock time (`04:02:24`, optionally with a fractional part).
    Time,
    /// A combined timestamp (date `T`/space time, e.g. `2018-06-10 04:02:24`).
    Timestamp,
    /// A URL with an explicit scheme (`http://…`, `https://…`, `ftp://…`).
    Url,
    /// An absolute filesystem-style path (`/var/log/syslog`).
    Path,
    /// An e-mail address.
    Email,
    /// A UUID (8-4-4-4-12 hex digits).
    Uuid,
    /// A MAC address (six colon- or dash-separated hex octets).
    MacAddress,
    /// A hexadecimal identifier of at least 6 digits (commit hashes, pointers, …).
    HexId,
    /// An integer (possibly signed).
    Integer,
    /// A real number with a decimal point.
    Real,
    /// A percentage (`73%` or `12.5%`).
    Percentage,
    /// A byte size with unit suffix (`12KB`, `3.4 MiB`).
    ByteSize,
    /// A log severity keyword (`INFO`, `WARN`, `ERROR`, …).
    Severity,
    /// A short machine identifier: letters/digits/`_`/`-`, no spaces.
    Identifier,
    /// Anything else (free text).
    Text,
}

impl SemanticType {
    /// Short lowercase name (used in reports and CSV headers).
    pub fn name(&self) -> &'static str {
        match self {
            SemanticType::IpV4 => "ipv4",
            SemanticType::IpV6 => "ipv6",
            SemanticType::Date => "date",
            SemanticType::Time => "time",
            SemanticType::Timestamp => "timestamp",
            SemanticType::Url => "url",
            SemanticType::Path => "path",
            SemanticType::Email => "email",
            SemanticType::Uuid => "uuid",
            SemanticType::MacAddress => "mac",
            SemanticType::HexId => "hex_id",
            SemanticType::Integer => "integer",
            SemanticType::Real => "real",
            SemanticType::Percentage => "percentage",
            SemanticType::ByteSize => "byte_size",
            SemanticType::Severity => "severity",
            SemanticType::Identifier => "identifier",
            SemanticType::Text => "text",
        }
    }

    /// Inverse of [`SemanticType::name`]: parses the short lowercase name back.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "ipv4" => SemanticType::IpV4,
            "ipv6" => SemanticType::IpV6,
            "date" => SemanticType::Date,
            "time" => SemanticType::Time,
            "timestamp" => SemanticType::Timestamp,
            "url" => SemanticType::Url,
            "path" => SemanticType::Path,
            "email" => SemanticType::Email,
            "uuid" => SemanticType::Uuid,
            "mac" => SemanticType::MacAddress,
            "hex_id" => SemanticType::HexId,
            "integer" => SemanticType::Integer,
            "real" => SemanticType::Real,
            "percentage" => SemanticType::Percentage,
            "byte_size" => SemanticType::ByteSize,
            "severity" => SemanticType::Severity,
            "identifier" => SemanticType::Identifier,
            "text" => SemanticType::Text,
            _ => return None,
        })
    }

    /// `true` for types that carry a single numeric value.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            SemanticType::Integer
                | SemanticType::Real
                | SemanticType::Percentage
                | SemanticType::ByteSize
        )
    }
}

/// Classifies one value.  The most specific matching type wins; empty strings are [`Text`].
///
/// [`Text`]: SemanticType::Text
pub fn detect(value: &str) -> SemanticType {
    let v = value.trim();
    if v.is_empty() {
        return SemanticType::Text;
    }
    if is_ipv4(v) {
        return SemanticType::IpV4;
    }
    if is_ipv6(v) {
        return SemanticType::IpV6;
    }
    if is_uuid(v) {
        return SemanticType::Uuid;
    }
    if is_mac(v) {
        return SemanticType::MacAddress;
    }
    if is_timestamp(v) {
        return SemanticType::Timestamp;
    }
    if is_date(v) {
        return SemanticType::Date;
    }
    if is_time(v) {
        return SemanticType::Time;
    }
    if is_url(v) {
        return SemanticType::Url;
    }
    if is_email(v) {
        return SemanticType::Email;
    }
    if is_path(v) {
        return SemanticType::Path;
    }
    if is_percentage(v) {
        return SemanticType::Percentage;
    }
    if is_byte_size(v) {
        return SemanticType::ByteSize;
    }
    if is_severity(v) {
        return SemanticType::Severity;
    }
    if parse_integer(v).is_some() {
        return SemanticType::Integer;
    }
    if is_real(v) {
        return SemanticType::Real;
    }
    if is_hex_id(v) {
        return SemanticType::HexId;
    }
    if is_identifier(v) {
        return SemanticType::Identifier;
    }
    SemanticType::Text
}

/// A column-level semantic annotation.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnAnnotation {
    /// Column index in the table.
    pub column: usize,
    /// The inferred semantic type.
    pub semantic: SemanticType,
    /// Fraction of non-empty values that individually match the inferred type.
    pub confidence: f64,
}

/// A run of adjacent columns that, joined with a fixed delimiter, form one composite value
/// (e.g. four octet columns forming an IPv4 address).
#[derive(Clone, Debug, PartialEq)]
pub struct CompositeColumn {
    /// The first column of the run.
    pub first_column: usize,
    /// Number of adjacent columns in the run.
    pub width: usize,
    /// The delimiter to re-insert between the columns.
    pub delimiter: char,
    /// The semantic type of the joined value.
    pub semantic: SemanticType,
}

/// Semantic annotation of one table: per-column types plus composite column runs.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct TableAnnotation {
    /// One annotation per column, in column order.
    pub columns: Vec<ColumnAnnotation>,
    /// Detected multi-column composites (non-overlapping, left to right).
    pub composites: Vec<CompositeColumn>,
}

/// Minimum fraction of values that must agree for a column-level classification.
const COLUMN_AGREEMENT: f64 = 0.9;

/// Infers the semantic type of a column from its values: the most common per-value type, if
/// at least 90% of the non-empty values agree; otherwise [`SemanticType::Text`] (or
/// [`SemanticType::Identifier`] when everything is at least identifier-shaped).
pub fn infer_column(values: &[&str]) -> (SemanticType, f64) {
    let mut counts: Vec<(SemanticType, usize)> = Vec::new();
    let mut total = 0usize;
    for v in values {
        if v.trim().is_empty() {
            continue;
        }
        total += 1;
        let t = detect(v);
        match counts.iter_mut().find(|(k, _)| *k == t) {
            Some((_, c)) => *c += 1,
            None => counts.push((t, 1)),
        }
    }
    if total == 0 {
        return (SemanticType::Text, 0.0);
    }
    counts.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    let (best, n) = counts[0];
    let confidence = n as f64 / total as f64;
    if confidence >= COLUMN_AGREEMENT {
        (best, confidence)
    } else if counts.iter().all(|(t, _)| *t != SemanticType::Text) {
        (SemanticType::Identifier, confidence)
    } else {
        (SemanticType::Text, confidence)
    }
}

/// Annotates a denormalized table: per-column semantic types plus composite column runs.
pub fn annotate_table(table: &Table) -> TableAnnotation {
    let n = table.columns.len();
    let mut columns = Vec::with_capacity(n);
    let mut column_values: Vec<Vec<&str>> = vec![Vec::new(); n];
    for r in 0..table.row_count() {
        for (c, v) in table.row(r).enumerate().take(n) {
            column_values[c].push(v);
        }
    }
    for (c, vals) in column_values.iter().enumerate() {
        let (semantic, confidence) = infer_column(vals);
        columns.push(ColumnAnnotation {
            column: c,
            semantic,
            confidence,
        });
    }
    let composites = detect_composites(&column_values, &columns, table);
    TableAnnotation {
        columns,
        composites,
    }
}

/// Annotates every record type of an extraction result (one [`TableAnnotation`] per
/// discovered structure, in discovery order), using the denormalized tables.
pub fn annotate_result(result: &ExtractionResult) -> Vec<TableAnnotation> {
    result
        .structures
        .iter()
        .map(|s| annotate_table(&s.denormalized))
        .collect()
}

/// Composite patterns tried, in priority order: (width, joiner, expected joined type).
const COMPOSITE_PATTERNS: &[(usize, char, SemanticType)] = &[
    (4, '.', SemanticType::IpV4),
    (3, ':', SemanticType::Time),
    (3, '-', SemanticType::Date),
    (3, '/', SemanticType::Date),
    (2, ':', SemanticType::Time),
];

fn detect_composites(
    column_values: &[Vec<&str>],
    columns: &[ColumnAnnotation],
    table: &Table,
) -> Vec<CompositeColumn> {
    let n = columns.len();
    let mut composites = Vec::new();
    let mut c = 0usize;
    'outer: while c < n {
        for &(width, delimiter, semantic) in COMPOSITE_PATTERNS {
            if c + width > n {
                continue;
            }
            // Every column in the run must be numeric-ish and the joined sample values must
            // classify as the composite type.
            if !(c..c + width).all(|k| columns[k].semantic == SemanticType::Integer) {
                continue;
            }
            let rows = table.row_count().min(16);
            if rows == 0 {
                continue;
            }
            let all_match = (0..rows).all(|r| {
                let joined: Vec<&str> = (c..c + width)
                    .map(|k| column_values[k].get(r).copied().unwrap_or(""))
                    .collect();
                detect(&joined.join(&delimiter.to_string())) == semantic
            });
            if all_match {
                composites.push(CompositeColumn {
                    first_column: c,
                    width,
                    delimiter,
                    semantic,
                });
                c += width;
                continue 'outer;
            }
        }
        c += 1;
    }
    composites
}

// ---------------------------------------------------------------------------
// Individual recognizers.
// ---------------------------------------------------------------------------

fn is_ipv4(v: &str) -> bool {
    let mut parts = 0usize;
    for p in v.split('.') {
        if p.is_empty() || p.len() > 3 || !p.bytes().all(|b| b.is_ascii_digit()) {
            return false;
        }
        if p.parse::<u32>().map(|x| x > 255).unwrap_or(true) {
            return false;
        }
        parts += 1;
    }
    parts == 4
}

fn is_ipv6(v: &str) -> bool {
    if !v.contains(':') || v.contains('.') {
        return false;
    }
    let groups: Vec<&str> = v.split(':').collect();
    if groups.len() < 3 || groups.len() > 8 {
        return false;
    }
    let mut empty_runs = 0usize;
    for g in &groups {
        if g.is_empty() {
            empty_runs += 1;
            continue;
        }
        if g.len() > 4 || !g.bytes().all(|b| b.is_ascii_hexdigit()) {
            return false;
        }
    }
    // "::" compression appears as consecutive empty groups; allow at most one run of them.
    empty_runs <= 2 && (groups.len() == 8 || empty_runs > 0)
}

fn is_uuid(v: &str) -> bool {
    let parts: Vec<&str> = v.split('-').collect();
    parts.len() == 5
        && [8usize, 4, 4, 4, 12]
            .iter()
            .zip(&parts)
            .all(|(len, p)| p.len() == *len && p.bytes().all(|b| b.is_ascii_hexdigit()))
}

fn is_mac(v: &str) -> bool {
    let sep = if v.contains(':') {
        ':'
    } else if v.contains('-') {
        '-'
    } else {
        return false;
    };
    let parts: Vec<&str> = v.split(sep).collect();
    parts.len() == 6
        && parts
            .iter()
            .all(|p| p.len() == 2 && p.bytes().all(|b| b.is_ascii_hexdigit()))
}

fn is_date(v: &str) -> bool {
    for sep in ['-', '/'] {
        let parts: Vec<&str> = v.split(sep).collect();
        if parts.len() == 3
            && parts
                .iter()
                .all(|p| !p.is_empty() && p.len() <= 4 && p.bytes().all(|b| b.is_ascii_digit()))
        {
            // Either the first (YYYY-MM-DD) or the last (DD-MM-YYYY) component is a year.
            let year_first = parts[0].len() == 4;
            let year_last = parts[2].len() == 4;
            if year_first || year_last {
                return true;
            }
        }
    }
    false
}

fn is_time(v: &str) -> bool {
    let (hms, frac) = match v.split_once('.') {
        Some((a, b)) => (a, Some(b)),
        None => (v, None),
    };
    if let Some(f) = frac {
        if f.is_empty() || !f.bytes().all(|b| b.is_ascii_digit()) {
            return false;
        }
    }
    let parts: Vec<&str> = hms.split(':').collect();
    (parts.len() == 2 || parts.len() == 3)
        && parts
            .iter()
            .all(|p| (p.len() == 1 || p.len() == 2) && p.bytes().all(|b| b.is_ascii_digit()))
        && parts[0].parse::<u32>().map(|h| h < 24).unwrap_or(false)
        && parts[1..]
            .iter()
            .all(|p| p.parse::<u32>().map(|x| x < 60).unwrap_or(false))
}

fn is_timestamp(v: &str) -> bool {
    for sep in ['T', ' '] {
        if let Some((d, t)) = v.split_once(sep) {
            let t = t.trim_end_matches('Z');
            if is_date(d) && is_time(t) {
                return true;
            }
        }
    }
    false
}

fn is_url(v: &str) -> bool {
    for scheme in ["http://", "https://", "ftp://", "file://"] {
        if let Some(rest) = v.strip_prefix(scheme) {
            return !rest.is_empty() && !rest.contains(char::is_whitespace);
        }
    }
    false
}

fn is_path(v: &str) -> bool {
    v.starts_with('/')
        && v.len() > 1
        && !v.contains(char::is_whitespace)
        && v.bytes().filter(|b| *b == b'/').count() >= 1
}

fn is_email(v: &str) -> bool {
    let Some((local, domain)) = v.split_once('@') else {
        return false;
    };
    !local.is_empty()
        && !domain.is_empty()
        && domain.contains('.')
        && !domain.starts_with('.')
        && !domain.ends_with('.')
        && !v.contains(char::is_whitespace)
        && v.bytes().filter(|b| *b == b'@').count() == 1
}

fn is_percentage(v: &str) -> bool {
    v.strip_suffix('%')
        .map(|num| parse_integer(num).is_some() || is_real(num))
        .unwrap_or(false)
}

fn is_byte_size(v: &str) -> bool {
    const UNITS: &[&str] = &["B", "KB", "MB", "GB", "TB", "KiB", "MiB", "GiB", "TiB"];
    for unit in UNITS {
        if let Some(num) = v.strip_suffix(unit) {
            let num = num.trim_end();
            if !num.is_empty() && (parse_integer(num).is_some() || is_real(num)) {
                return true;
            }
        }
    }
    false
}

fn is_severity(v: &str) -> bool {
    const LEVELS: &[&str] = &[
        "TRACE", "DEBUG", "INFO", "NOTICE", "WARN", "WARNING", "ERROR", "ERR", "CRITICAL", "FATAL",
        "PANIC",
    ];
    LEVELS.iter().any(|l| v.eq_ignore_ascii_case(l))
}

fn is_real(v: &str) -> bool {
    let body = v.strip_prefix('-').unwrap_or(v);
    let Some((int, frac)) = body.split_once('.') else {
        return false;
    };
    !int.is_empty()
        && !frac.is_empty()
        && int.bytes().all(|b| b.is_ascii_digit())
        && frac.bytes().all(|b| b.is_ascii_digit())
}

fn is_hex_id(v: &str) -> bool {
    let body = v
        .strip_prefix("0x")
        .or_else(|| v.strip_prefix("0X"))
        .unwrap_or(v);
    body.len() >= 6
        && body.bytes().all(|b| b.is_ascii_hexdigit())
        && body.bytes().any(|b| !b.is_ascii_digit())
}

fn is_identifier(v: &str) -> bool {
    !v.is_empty()
        && v.len() <= 64
        && v.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_ipv4_and_rejects_near_misses() {
        assert_eq!(detect("192.168.0.1"), SemanticType::IpV4);
        assert_eq!(detect("10.0.0.255"), SemanticType::IpV4);
        assert_ne!(detect("300.1.2.3"), SemanticType::IpV4);
        assert_ne!(detect("1.2.3"), SemanticType::IpV4);
        assert_ne!(detect("1.2.3.4.5"), SemanticType::IpV4);
    }

    #[test]
    fn detects_ipv6() {
        assert_eq!(detect("fe80::1a2b:3c4d:5e6f:7a8b"), SemanticType::IpV6);
        assert_eq!(
            detect("2001:0db8:0000:0000:0000:ff00:0042:8329"),
            SemanticType::IpV6
        );
        assert_ne!(detect("04:02:24"), SemanticType::IpV6);
    }

    #[test]
    fn detects_dates_times_timestamps() {
        assert_eq!(detect("2018-06-10"), SemanticType::Date);
        assert_eq!(detect("10/06/2018"), SemanticType::Date);
        assert_eq!(detect("04:02:24"), SemanticType::Time);
        assert_eq!(detect("4:02"), SemanticType::Time);
        assert_eq!(detect("04:02:24.531"), SemanticType::Time);
        assert_eq!(detect("2018-06-10 04:02:24"), SemanticType::Timestamp);
        assert_eq!(detect("2018-06-10T04:02:24Z"), SemanticType::Timestamp);
        assert_ne!(detect("25:99:99"), SemanticType::Time);
    }

    #[test]
    fn detects_urls_paths_emails() {
        assert_eq!(detect("https://example.org/x?q=1"), SemanticType::Url);
        assert_eq!(detect("/var/log/syslog"), SemanticType::Path);
        assert_eq!(detect("alice@example.org"), SemanticType::Email);
        assert_ne!(detect("not an email @ all"), SemanticType::Email);
    }

    #[test]
    fn detects_ids_and_numbers() {
        assert_eq!(
            detect("123e4567-e89b-12d3-a456-426614174000"),
            SemanticType::Uuid
        );
        assert_eq!(detect("aa:bb:cc:dd:ee:ff"), SemanticType::MacAddress);
        assert_eq!(detect("deadbeef42"), SemanticType::HexId);
        assert_eq!(detect("0x7ffe12ab"), SemanticType::HexId);
        assert_eq!(detect("-42"), SemanticType::Integer);
        assert_eq!(detect("3.1415"), SemanticType::Real);
        assert_eq!(detect("73%"), SemanticType::Percentage);
        assert_eq!(detect("12.5%"), SemanticType::Percentage);
        assert_eq!(detect("64KB"), SemanticType::ByteSize);
        assert_eq!(detect("3.4 MiB"), SemanticType::ByteSize);
    }

    #[test]
    fn detects_severity_identifier_text() {
        assert_eq!(detect("ERROR"), SemanticType::Severity);
        assert_eq!(detect("warn"), SemanticType::Severity);
        assert_eq!(detect("srv-007"), SemanticType::Identifier);
        assert_eq!(detect("free text with spaces"), SemanticType::Text);
        assert_eq!(detect(""), SemanticType::Text);
    }

    #[test]
    fn numeric_flag_covers_numeric_types() {
        assert!(SemanticType::Integer.is_numeric());
        assert!(SemanticType::Percentage.is_numeric());
        assert!(!SemanticType::IpV4.is_numeric());
    }

    #[test]
    fn column_inference_requires_agreement() {
        let ips = vec!["10.0.0.1", "10.0.0.2", "192.168.1.9"];
        assert_eq!(infer_column(&ips).0, SemanticType::IpV4);
        let mixed = vec!["10.0.0.1", "hello world", "also text here"];
        assert_eq!(infer_column(&mixed).0, SemanticType::Text);
        let idish = vec!["abc", "127", "x-1"];
        assert_eq!(infer_column(&idish).0, SemanticType::Identifier);
        assert_eq!(infer_column(&[]).0, SemanticType::Text);
    }

    #[test]
    fn column_inference_reports_confidence() {
        let vals = vec!["1", "2", "3", "oops"];
        let (_, conf) = infer_column(&vals);
        assert!((conf - 0.75).abs() < 1e-9);
    }

    fn table(columns: &[&str], rows: &[&[&str]]) -> Table {
        Table::from_strings(
            "t",
            columns.iter().map(|c| c.to_string()).collect(),
            rows.iter()
                .map(|r| r.iter().map(|v| v.to_string()).collect())
                .collect(),
        )
    }

    #[test]
    fn annotate_table_types_every_column() {
        let t = table(
            &["a", "b", "c"],
            &[&["10.0.0.1", "GET", "42"], &["10.0.0.2", "POST", "17"]],
        );
        let ann = annotate_table(&t);
        assert_eq!(ann.columns.len(), 3);
        assert_eq!(ann.columns[0].semantic, SemanticType::IpV4);
        assert_eq!(ann.columns[2].semantic, SemanticType::Integer);
    }

    #[test]
    fn composite_ipv4_run_is_detected() {
        let t = table(
            &["o1", "o2", "o3", "o4", "user"],
            &[
                &["192", "168", "0", "1", "alice"],
                &["10", "0", "12", "255", "bob"],
            ],
        );
        let ann = annotate_table(&t);
        assert_eq!(ann.composites.len(), 1);
        let c = &ann.composites[0];
        assert_eq!(c.first_column, 0);
        assert_eq!(c.width, 4);
        assert_eq!(c.delimiter, '.');
        assert_eq!(c.semantic, SemanticType::IpV4);
    }

    #[test]
    fn composite_time_run_is_detected_after_other_columns() {
        let t = table(
            &["h", "m", "s", "msg"],
            &[
                &["04", "02", "24", "started"],
                &["23", "59", "01", "stopped"],
            ],
        );
        let ann = annotate_table(&t);
        assert_eq!(ann.composites.len(), 1);
        assert_eq!(ann.composites[0].semantic, SemanticType::Time);
        assert_eq!(ann.composites[0].width, 3);
    }

    #[test]
    fn no_composite_on_unrelated_integer_columns() {
        let t = table(
            &["count", "size"],
            &[&["4", "1024"], &["7", "2048"], &["900", "99"]],
        );
        let ann = annotate_table(&t);
        // A 2-wide ':' join would have to look like a clock time for every sampled row;
        // "900:99" does not, so no composite must be reported.
        assert!(ann.composites.is_empty(), "{:?}", ann.composites);
    }

    #[test]
    fn empty_table_annotation_is_empty() {
        let t = table(&[], &[]);
        let ann = annotate_table(&t);
        assert!(ann.columns.is_empty());
        assert!(ann.composites.is_empty());
    }
}
