//! Minimal self-contained JSON tree, emitter, and parser.
//!
//! The build environment vendors no serialization framework, so the JSON interchange used by
//! [`crate::export`] is implemented directly: a [`JsonValue`] tree with a pretty printer and
//! a strict recursive-descent parser.  Object key order is preserved (reports stay diffable),
//! and all string escapes required by RFC 8259 are handled on both paths.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

/// Error raised when parsing malformed JSON or reading a value with the wrong shape.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    message: String,
    /// Byte offset the parser had reached, when applicable.
    pub offset: usize,
}

impl JsonError {
    fn new(message: impl Into<String>, offset: usize) -> Self {
        JsonError {
            message: message.into(),
            offset,
        }
    }

    /// A shape error (missing key, wrong type) detected while reading a parsed tree.
    pub fn shape(message: impl Into<String>) -> Self {
        JsonError::new(message, 0)
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required key, with a shape error naming the key on failure.
    pub fn require(&self, key: &str) -> Result<&JsonValue, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::shape(format!("missing key {key:?}")))
    }

    /// Reads the value as a float.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            JsonValue::Number(n) => Ok(*n),
            other => Err(JsonError::shape(format!("expected number, got {other:?}"))),
        }
    }

    /// Reads the value as a non-negative integer.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(JsonError::shape(format!("expected integer, got {n}")));
        }
        Ok(n as usize)
    }

    /// Reads the value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            JsonValue::String(s) => Ok(s),
            other => Err(JsonError::shape(format!("expected string, got {other:?}"))),
        }
    }

    /// Reads the value as an array slice.
    pub fn as_array(&self) -> Result<&[JsonValue], JsonError> {
        match self {
            JsonValue::Array(items) => Ok(items),
            other => Err(JsonError::shape(format!("expected array, got {other:?}"))),
        }
    }

    /// Serializes the tree as pretty-printed JSON (two-space indent).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => out.push_str(&format_number(*n)),
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::new("trailing characters", pos));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Formats a number the way serde_json does: integers without a fractional part.
fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        format!("{}", n as i64)
    } else {
        // `{}` on f64 is the shortest representation that round-trips.
        format!("{n}")
    }
}

/// Appends `s` to `out` as a quoted, RFC-8259-escaped JSON string literal.  Exposed so the
/// streaming JSON Lines sink ([`crate::export::JsonLinesSink`]) emits exactly the escapes
/// the tree emitter produces, without building a [`JsonValue`] per record.
pub fn escape_into(out: &mut String, s: &str) {
    write_escaped(out, s);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

/// Maximum nesting depth accepted by the parser (matches serde_json's default recursion
/// cap): deeper documents return an error instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError::new("recursion limit exceeded", *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::new("unexpected end of input", *pos)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(JsonError::new("expected ',' or ']'", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError::new("expected ':'", *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(entries));
                    }
                    _ => return Err(JsonError::new("expected ',' or '}'", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(JsonError::new(format!("expected {keyword:?}"), *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::new("expected string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::new("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError::new("truncated \\u escape", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::new("bad \\u escape", *pos))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::new("bad \\u escape", *pos))?;
                        // Surrogate pairs: only the BMP escapes our emitter produces are
                        // required; reject lone surrogates instead of silently corrupting.
                        let c = char::from_u32(cp)
                            .ok_or_else(|| JsonError::new("surrogate \\u escape", *pos))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(JsonError::new("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::new("invalid utf-8", *pos))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::new("invalid number", start))?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| JsonError::new(format!("invalid number {text:?}"), start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = JsonValue::Object(vec![
            ("name".into(), JsonValue::String("a \"b\"\n\t\\".into())),
            ("count".into(), JsonValue::Number(42.0)),
            ("ratio".into(), JsonValue::Number(0.125)),
            ("flag".into(), JsonValue::Bool(true)),
            ("nothing".into(), JsonValue::Null),
            (
                "items".into(),
                JsonValue::Array(vec![
                    JsonValue::Number(-3.0),
                    JsonValue::String("x".into()),
                    JsonValue::Object(vec![]),
                    JsonValue::Array(vec![]),
                ]),
            ),
        ]);
        let text = doc.to_pretty();
        assert_eq!(JsonValue::parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(JsonValue::Number(42.0).to_pretty(), "42");
        assert_eq!(JsonValue::Number(0.5).to_pretty(), "0.5");
        assert_eq!(JsonValue::Number(-7.0).to_pretty(), "-7");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , \"\\u0041\\n\" ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_str().unwrap(),
            "A\n"
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("\"abc").is_err());
        assert!(JsonValue::parse("12 34").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn shape_accessors_report_errors() {
        let v = JsonValue::parse("{\"n\": 1.5, \"s\": \"x\"}").unwrap();
        assert!(v.require("missing").is_err());
        assert!(v.get("n").unwrap().as_usize().is_err());
        assert!(v.get("s").unwrap().as_f64().is_err());
        assert_eq!(v.get("n").unwrap().as_f64().unwrap(), 1.5);
    }

    #[test]
    fn unicode_survives_round_trip() {
        let doc = JsonValue::String("héllo — 日本 \u{1}".into());
        let text = doc.to_pretty();
        assert_eq!(JsonValue::parse(&text).unwrap(), doc);
    }
}
