//! The generation step (§4.1, Algorithm 1): find structure templates satisfying the coverage
//! threshold assumption by enumerating `RT-CharSet` values and candidate record boundaries,
//! reducing every candidate record to its minimal structure template, and accumulating
//! per-template coverage in a hash table.
//!
//! Two backends implement the step (selected by
//! [`DatamaranConfig::generation_backend`](crate::config::DatamaranConfig)):
//!
//! * **Spans** (default, [`GenerationBackend::Spans`]): the sample is tokenized **once**
//!   under the superset of all candidate characters ([`crate::span::LineIndex`]); each
//!   enumerated subset charset re-derives every line's template by an `O(#occurrences)`
//!   projection instead of a fresh scan, the record → minimal-template reduction is memoized
//!   into interned [`TemplateId`]s ([`crate::intern`]) so the hash tables key on `u32`s, and
//!   the `2^c` (exhaustive) / `O(c²)` (greedy) charset evaluations run on scoped worker
//!   threads.  The inner per-record loop performs no per-token heap allocation: the token
//!   buffer, projection arena, and accumulator table are all reused.
//! * **Legacy** ([`GenerationBackend::Legacy`]): the original implementation — one full
//!   re-tokenization pass per charset, hash tables keyed on owned token vectors and template
//!   trees.  Kept as the differential-testing oracle and benchmark baseline.
//!
//! Both backends produce identical candidates (same templates, same coverage statistics),
//! which the equivalence property suite enforces.

use crate::chars::CharSet;
use crate::config::{DatamaranConfig, GenerationBackend, SearchStrategy};
use crate::dataset::Dataset;
use crate::fxhash::FxHashMap;
use crate::intern::{TemplateId, TemplateInterner};
use crate::parallel::{effective_workers, resolve_threads, WorkQueue};
use crate::record::{RecordTemplate, TemplateToken};
use crate::reduce::{
    flat_nodes, reduce, tokens_have_fold_from, MAX_FOLD_TOKENS, MAX_UNIT_TOKENS, MIN_REPS,
};
use crate::span::LineIndex;
use crate::structure::StructureTemplate;
use std::collections::HashMap;

/// Each exhaustive-search worker should get at least this many charsets (a charset
/// evaluation is a full pass over the sample, so even small batches amortize spawn cost).
const MIN_CHARSETS_PER_WORKER: usize = 2;

/// Target work-stealing chunks claimed per exhaustive-search worker: enough granularity to
/// re-balance the skewed mask costs, coarse enough that the atomic claim is noise.
const MASK_CHUNKS_PER_WORKER: usize = 8;

/// A candidate structure template produced by the generation step, with the statistics needed
/// by the pruning step.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The (minimal) structure template.
    pub template: StructureTemplate,
    /// Total number of bytes of candidate records that reduced to this template
    /// (the paper's coverage, `Cov(T, S)`).
    pub coverage: usize,
    /// Total number of bytes covered by field values inside those candidate records.
    pub field_coverage: usize,
    /// Number of candidate records that reduced to this template.
    pub hits: usize,
    /// Line index of the earliest candidate record observed (used by structure shifting).
    pub first_line: usize,
    /// The `RT-CharSet` under which the candidate was generated.
    pub charset: CharSet,
}

impl Candidate {
    /// The Non-Field-Coverage term of §4.2: bytes covered by formatting characters.
    pub fn non_field_coverage(&self) -> usize {
        self.coverage.saturating_sub(self.field_coverage)
    }

    /// The assimilation score `G(T, S) = Cov(T, S) × Non_Field_Cov(T, S)`.
    pub fn assimilation_score(&self) -> f64 {
        self.coverage as f64 * self.non_field_coverage() as f64
    }
}

/// Output of the generation step.
#[derive(Clone, Debug, Default)]
pub struct GenerationOutput {
    /// All candidate templates whose estimated coverage reaches the `α%` threshold.
    pub candidates: Vec<Candidate>,
    /// Size in bytes of the sample the step ran on.
    pub sample_len: usize,
    /// Number of `RT-CharSet` values enumerated (the paper's step-1 loop).
    pub charsets_enumerated: usize,
    /// Number of candidate records examined across all character sets.
    pub records_examined: usize,
}

/// Accumulator stored in the generation hash table for one structure template.
#[derive(Clone, Debug, Default)]
struct Accum {
    coverage: usize,
    field_coverage: usize,
    hits: usize,
    first_line: usize,
    /// Byte offset up to which this bin's coverage has already been counted.  Candidate
    /// records overlap heavily (every pair of nearby line boundaries is a candidate), so
    /// without de-duplication a template that merely stacks `k` copies of a single-line
    /// template would count every byte `k` times and dominate the assimilation ranking.
    covered_until: usize,
}

impl Accum {
    /// Steps 3–5 of the generation procedure for one candidate record: count the bytes not
    /// yet covered by this bin (apportioning field bytes pro rata) and record the hit.
    /// Shared verbatim by both backends — candidate statistics must match bit-for-bit.
    fn record_candidate(
        &mut self,
        start: usize,
        start_byte: usize,
        span_bytes: usize,
        span_field_bytes: usize,
    ) {
        // Count only the bytes this bin has not covered yet (candidates are visited in
        // increasing start order, so a single high-water mark suffices).
        let end_byte = start_byte + span_bytes;
        let new_bytes = end_byte.saturating_sub(start_byte.max(self.covered_until));
        if new_bytes > 0 {
            self.coverage += new_bytes;
            // Field bytes are apportioned pro rata to the newly covered fraction.
            let scaled = (span_field_bytes as f64 * new_bytes as f64 / span_bytes.max(1) as f64)
                .round() as usize;
            self.field_coverage += scaled.min(new_bytes);
            self.covered_until = self.covered_until.max(end_byte);
        }
        self.hits += 1;
        if start < self.first_line {
            self.first_line = start;
        }
    }
}

/// Runs the generation step over a (sampled) dataset.
pub fn generate(sample: &Dataset, config: &DatamaranConfig) -> GenerationOutput {
    let present = config
        .special_chars
        .restrict_to_text(sample.text())
        .union(&CharSet::from_chars(['\n']));

    let use_greedy = match config.search {
        // Fall back to the greedy procedure when 2^c would be unreasonably large.
        SearchStrategy::Exhaustive => present.len().saturating_sub(1) > config.max_exhaustive_chars,
        SearchStrategy::Greedy => true,
    };

    match config.generation_backend {
        GenerationBackend::Spans => {
            let engine = SpanEngine::new(sample, present, config);
            if use_greedy {
                engine.greedy_search()
            } else {
                engine.exhaustive_search()
            }
        }
        GenerationBackend::Legacy => {
            if use_greedy {
                legacy::greedy_search(sample, &present, config)
            } else {
                legacy::exhaustive_search(sample, &present, config)
            }
        }
    }
}

/// Builds the subset charset of `extra` selected by `mask`, always including `\n`.
fn mask_to_charset(mask: u64, extra: &[char]) -> CharSet {
    let mut charset = CharSet::from_chars(['\n']);
    for (bit, &c) in extra.iter().enumerate() {
        if mask & (1 << bit) != 0 {
            charset.insert(c);
        }
    }
    charset
}

/// `true` when `new` should replace `old` as the representative discovery of one template:
/// larger coverage wins, ties go to the charset that the sequential enumeration would have
/// visited first.  Total order → the merge result is independent of evaluation order, which
/// is what makes the multi-threaded enumeration deterministic.
fn replaces(new: &Candidate, old: &Candidate) -> bool {
    new.coverage > old.coverage
        || (new.coverage == old.coverage
            && new.charset.cmp_enumeration_order(&old.charset) == std::cmp::Ordering::Less)
}

/// Merges per-charset candidate lists, keeping for each template the occurrence selected by
/// [`replaces`] (the same template can be discovered under several character sets).
fn merge_candidates(merged: &mut HashMap<StructureTemplate, Candidate>, found: Vec<Candidate>) {
    for cand in found {
        match merged.get_mut(&cand.template) {
            Some(existing) => {
                if replaces(&cand, existing) {
                    *existing = cand;
                }
            }
            None => {
                merged.insert(cand.template.clone(), cand);
            }
        }
    }
}

/// Asserts that two generation outputs are identical in every observable respect: sample
/// statistics and, per candidate, template, coverage, field coverage, hits, first line,
/// and charset.  This is the oracle of the spans-vs-legacy differential test suites (unit
/// tests here and `tests/span_equivalence.rs`); hidden from docs, not for production use.
#[doc(hidden)]
pub fn assert_outputs_identical(a: &GenerationOutput, b: &GenerationOutput, label: &str) {
    assert_eq!(a.sample_len, b.sample_len, "{label}: sample_len");
    assert_eq!(
        a.charsets_enumerated, b.charsets_enumerated,
        "{label}: charsets_enumerated"
    );
    assert_eq!(
        a.records_examined, b.records_examined,
        "{label}: records_examined"
    );
    assert_eq!(
        a.candidates.len(),
        b.candidates.len(),
        "{label}: candidate count"
    );
    for (x, y) in a.candidates.iter().zip(&b.candidates) {
        assert_eq!(x.template, y.template, "{label}: template");
        assert_eq!(
            x.coverage, y.coverage,
            "{label}: coverage of {}",
            x.template
        );
        assert_eq!(
            x.field_coverage, y.field_coverage,
            "{label}: field_coverage of {}",
            x.template
        );
        assert_eq!(x.hits, y.hits, "{label}: hits of {}", x.template);
        assert_eq!(
            x.first_line, y.first_line,
            "{label}: first_line of {}",
            x.template
        );
        assert_eq!(x.charset, y.charset, "{label}: charset of {}", x.template);
    }
}

/// Orders candidates by descending assimilation score (ties broken by template size for
/// determinism).
pub fn sort_candidates(candidates: &mut [Candidate]) {
    candidates.sort_by(|a, b| {
        b.assimilation_score()
            .partial_cmp(&a.assimilation_score())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                a.template
                    .description_chars()
                    .cmp(&b.template.description_chars())
            })
            .then_with(|| {
                a.template
                    .canonical_string()
                    .cmp(&b.template.canonical_string())
            })
    });
}

// ---------------------------------------------------------------------------------------
// Span backend
// ---------------------------------------------------------------------------------------

/// Store of interned line *token sequences*, shared across charsets within one worker.
///
/// Distinct shape classes can project to the same token sequence under a given subset
/// (they may differ only in demoted characters), so sequences — not classes — are the
/// sound per-line key for the record memo: a window of sequence ids uniquely determines
/// the record's token concatenation.
#[derive(Clone, Debug, Default)]
struct SeqStore {
    map: FxHashMap<Box<[TemplateToken]>, u32>,
    flat: Vec<TemplateToken>,
    /// `flat` range of sequence `s`: `offsets[s]..offsets[s + 1]`.
    offsets: Vec<u32>,
}

impl SeqStore {
    fn intern(&mut self, tokens: &[TemplateToken]) -> u32 {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        if let Some(&id) = self.map.get(tokens) {
            return id;
        }
        let id = (self.offsets.len() - 1) as u32;
        self.flat.extend_from_slice(tokens);
        self.offsets.push(self.flat.len() as u32);
        self.map.insert(tokens.into(), id);
        id
    }

    fn tokens(&self, id: u32) -> &[TemplateToken] {
        &self.flat[self.offsets[id as usize] as usize..self.offsets[id as usize + 1] as usize]
    }
}

/// Line projections of the whole sample under one subset charset: per-line sequence ids
/// and field-byte counts, derived from per-*class* projections (all buffers reused across
/// charsets — no per-line or per-token allocation).
#[derive(Clone, Debug, Default)]
struct ProjectedLines {
    /// Interned token-sequence id of each line.
    line_seq: Vec<u32>,
    /// Field-byte count of each line under the projected charset.
    field_len: Vec<u32>,
    /// Per-class scratch: sequence id and kept (formatting) bytes.
    class_seq: Vec<u32>,
    class_kept: Vec<u32>,
    /// Reusable projection buffer.
    scratch: Vec<TemplateToken>,
}

impl ProjectedLines {
    fn project(&mut self, index: &LineIndex, subset: &CharSet, seqs: &mut SeqStore) {
        self.class_seq.clear();
        self.class_kept.clear();
        for c in 0..index.class_count() as u32 {
            self.scratch.clear();
            index.project_class(c, subset, &mut self.scratch);
            self.class_seq.push(seqs.intern(&self.scratch));
            self.class_kept
                .push(index.class_kept_bytes(c, subset) as u32);
        }
        self.line_seq.clear();
        self.field_len.clear();
        for i in 0..index.line_count() {
            let class = index.class_of(i) as usize;
            self.line_seq.push(self.class_seq[class]);
            self.field_len
                .push(index.line_len(i) as u32 - self.class_kept[class]);
        }
    }
}

/// Dense accumulator table keyed by [`TemplateId`], reset per charset via an epoch stamp
/// (no per-charset clearing or rehashing).
#[derive(Clone, Debug, Default)]
struct Bins {
    accums: Vec<Accum>,
    epoch_mark: Vec<u64>,
    epoch: u64,
    touched: Vec<TemplateId>,
}

impl Bins {
    fn begin_charset(&mut self) {
        self.epoch += 1;
        self.touched.clear();
    }

    fn accum(&mut self, id: TemplateId, first_line: usize) -> &mut Accum {
        let idx = id.index();
        if idx >= self.accums.len() {
            self.accums.resize(idx + 1, Accum::default());
            self.epoch_mark.resize(idx + 1, 0);
        }
        if self.epoch_mark[idx] != self.epoch {
            self.epoch_mark[idx] = self.epoch;
            self.accums[idx] = Accum {
                first_line,
                ..Default::default()
            };
            self.touched.push(id);
        }
        &mut self.accums[idx]
    }
}

/// Per-worker mutable state: interner, sequence store, window memo, accumulator table, and
/// the reusable projection buffers.  Each worker thread owns one, so the hot loop is
/// lock-free; per-thread results are merged deterministically at the end.
#[derive(Default)]
struct WorkerState {
    interner: TemplateInterner,
    seqs: SeqStore,
    /// Memo of line-sequence-id windows → (interned minimal template, window is verified
    /// fold-free).  The window (at most `L` `u32`s) is the whole hash key for a candidate
    /// record, replacing the legacy path's hash of the record's full token vector; the
    /// fold-free bit seeds the incremental scan when the window is grown by another line.
    window_memo: FxHashMap<Box<[u32]>, (TemplateId, bool)>,
    bins: Bins,
    proj: ProjectedLines,
    /// Reusable token buffer for materializing a window's record template on memo miss.
    buffer: Vec<TemplateToken>,
}

/// One template's best discovery within a worker, pending materialization.
#[derive(Clone, Copy, Debug)]
struct PartialCandidate {
    coverage: usize,
    field_coverage: usize,
    hits: usize,
    first_line: usize,
    charset: CharSet,
}

impl PartialCandidate {
    fn materialize(self, template: StructureTemplate) -> Candidate {
        Candidate {
            template,
            coverage: self.coverage,
            field_coverage: self.field_coverage,
            hits: self.hits,
            first_line: self.first_line,
            charset: self.charset,
        }
    }
}

/// `true` when `new` should replace `old` (id-keyed version of [`replaces`]).
fn partial_replaces(new: &PartialCandidate, old: &PartialCandidate) -> bool {
    new.coverage > old.coverage
        || (new.coverage == old.coverage
            && new.charset.cmp_enumeration_order(&old.charset) == std::cmp::Ordering::Less)
}

/// The span-projection generation engine: superset tokenization shared immutably across
/// worker threads, per-charset projections, interned accumulators.
struct SpanEngine<'a> {
    sample: &'a Dataset,
    present: CharSet,
    config: &'a DatamaranConfig,
    index: LineIndex,
}

impl<'a> SpanEngine<'a> {
    fn new(sample: &'a Dataset, present: CharSet, config: &'a DatamaranConfig) -> Self {
        let index = LineIndex::build(sample, &present);
        SpanEngine {
            sample,
            present,
            config,
            index,
        }
    }

    /// Steps 2–5 for a single `RT-CharSet`: project every line, enumerate candidate record
    /// boundaries spanning at most `L` lines, reduce each candidate to its interned minimal
    /// template, and accumulate coverage.  Candidates reaching the `α%` threshold are merged
    /// into the worker's `found` table.
    fn generate_for_charset(
        &self,
        state: &mut WorkerState,
        charset: &CharSet,
        records_examined: &mut usize,
        found: &mut HashMap<TemplateId, PartialCandidate>,
    ) {
        let n = self.index.line_count();
        if n == 0 {
            return;
        }
        state.proj.project(&self.index, charset, &mut state.seqs);
        state.bins.begin_charset();

        let max_span = self.config.max_line_span.max(1);
        let line_seq = std::mem::take(&mut state.proj.line_seq);
        let mut buffer = std::mem::take(&mut state.buffer);
        for start in 0..n {
            let mut span_bytes = 0usize;
            let mut span_field_bytes = 0usize;
            let start_byte = self.sample.line_start(start);
            // The window's token concatenation grows incrementally with the span, and
            // `fold_free` tracks whether the *previous* (shorter) window was proven free of
            // foldable tandem repeats — the invariant that lets a memo miss decide the
            // grown window with a scan restricted to the region near the freshly appended
            // line instead of a full quadratic `reduce`.
            buffer.clear();
            let mut fold_free = true;
            for span in 1..=max_span {
                let end = start + span;
                if end > n {
                    break;
                }
                span_bytes += self.index.line_len(end - 1);
                span_field_bytes += state.proj.field_len[end - 1] as usize;
                let old_len = buffer.len();
                buffer.extend_from_slice(state.seqs.tokens(line_seq[end - 1]));
                *records_examined += 1;

                if buffer.is_empty() {
                    continue;
                }
                let window = &line_seq[start..end];
                let (id, window_fold_free) = match state.window_memo.get(window) {
                    Some(&hit) => hit,
                    None => {
                        // First sighting of this window.  Three cases, cheapest first:
                        // above the fold cap `reduce` stays flat by definition; a window
                        // whose prefix was fold-free and whose restricted scan finds no
                        // new fold is flat too (same node sequence, no fold search); only
                        // windows actually containing a fold pay the full reduction.
                        let (template, ff) = if buffer.len() > MAX_FOLD_TOKENS {
                            (StructureTemplate::new(flat_nodes(&buffer)), false)
                        } else if fold_free
                            && !tokens_have_fold_from(
                                &buffer,
                                old_len.saturating_sub((MIN_REPS + 1) * MAX_UNIT_TOKENS),
                            )
                        {
                            (StructureTemplate::new(flat_nodes(&buffer)), true)
                        } else {
                            (reduce(&RecordTemplate::from_tokens(buffer.clone())), false)
                        };
                        let id = state.interner.intern(template);
                        state.window_memo.insert(window.into(), (id, ff));
                        (id, ff)
                    }
                };
                fold_free = window_fold_free;
                state.bins.accum(id, start).record_candidate(
                    start,
                    start_byte,
                    span_bytes,
                    span_field_bytes,
                );
            }
        }
        state.buffer = buffer;
        state.proj.line_seq = line_seq;

        let threshold = ((self.config.alpha * self.sample.len() as f64).ceil() as usize).max(1);
        for &id in &state.bins.touched {
            let acc = &state.bins.accums[id.index()];
            if acc.coverage < threshold {
                continue;
            }
            let partial = PartialCandidate {
                coverage: acc.coverage,
                field_coverage: acc.field_coverage,
                hits: acc.hits,
                first_line: acc.first_line,
                charset: *charset,
            };
            match found.get_mut(&id) {
                Some(existing) => {
                    if partial_replaces(&partial, existing) {
                        *existing = partial;
                    }
                }
                None => {
                    found.insert(id, partial);
                }
            }
        }
    }

    /// Evaluates one charset in isolation (greedy search needs the per-charset candidate
    /// list rather than a running merge).
    fn candidates_for_charset(
        &self,
        state: &mut WorkerState,
        charset: &CharSet,
        records_examined: &mut usize,
    ) -> Vec<Candidate> {
        let mut found = HashMap::new();
        self.generate_for_charset(state, charset, records_examined, &mut found);
        found
            .into_iter()
            .map(|(id, partial)| partial.materialize(state.interner.get(id).clone()))
            .collect()
    }

    /// Enumerates all subsets of the present candidate characters (always keeping `\n`)
    /// across worker threads and merges the per-thread results deterministically.
    fn exhaustive_search(&self) -> GenerationOutput {
        let extra: Vec<char> = self.present.iter().filter(|&c| c != '\n').collect();
        let n_masks = 1usize << extra.len();
        let mut out = GenerationOutput {
            sample_len: self.sample.len(),
            charsets_enumerated: n_masks,
            ..Default::default()
        };

        let workers = effective_workers(
            resolve_threads(self.config.generation_threads),
            n_masks,
            MIN_CHARSETS_PER_WORKER,
        );
        let extra = &extra;

        // Mask costs are heavily skewed (the all-characters subsets tokenize far more
        // material than the near-empty ones), so workers *claim* chunks from an atomic
        // queue instead of being pre-assigned static ranges — no shard can strand the
        // others idle.  The merge is order-independent (`replaces` is a total order), so
        // which worker evaluates which mask cannot change the result.
        let queue = WorkQueue::for_workers(n_masks, workers, MASK_CHUNKS_PER_WORKER);
        let queue = &queue;

        // Each worker owns its interner / memo / bins and merges its claimed masks locally
        // (keyed by template id); materialized results are merged globally afterwards.
        let results: Vec<(Vec<Candidate>, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut state = WorkerState::default();
                        let mut records = 0usize;
                        let mut found: HashMap<TemplateId, PartialCandidate> = HashMap::new();
                        while let Some(range) = queue.claim() {
                            for mask in range {
                                let charset = mask_to_charset(mask as u64, extra);
                                self.generate_for_charset(
                                    &mut state,
                                    &charset,
                                    &mut records,
                                    &mut found,
                                );
                            }
                        }
                        let candidates = found
                            .into_iter()
                            .map(|(id, p)| p.materialize(state.interner.get(id).clone()))
                            .collect();
                        (candidates, records)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("generation worker panicked"))
                .collect()
        });

        let mut merged: HashMap<StructureTemplate, Candidate> = HashMap::new();
        for (candidates, records) in results {
            out.records_examined += records;
            merge_candidates(&mut merged, candidates);
        }
        out.candidates = merged.into_values().collect();
        sort_candidates(&mut out.candidates);
        out
    }

    /// The greedy `RT-CharSet` search of Appendix 9.1: grow the character set one character
    /// at a time, always adding the character whose induced structure templates achieve the
    /// highest assimilation score.  Each round's extension candidates are evaluated on
    /// worker threads; the selection replays the sequential order, so the result is
    /// identical to a single-threaded run.
    fn greedy_search(&self) -> GenerationOutput {
        let mut out = GenerationOutput {
            sample_len: self.sample.len(),
            ..Default::default()
        };
        let mut merged: HashMap<StructureTemplate, Candidate> = HashMap::new();

        // One persistent state per worker slot: the sequence store and window memo carry
        // across rounds, so a window is reduced at most once per worker for the whole
        // search rather than once per round (the memo is pure, so reuse cannot change
        // results).
        let max_workers = resolve_threads(self.config.generation_threads);
        let mut states: Vec<WorkerState> = vec![WorkerState::default()];

        let mut current = CharSet::from_chars(['\n']);
        let base = self.candidates_for_charset(&mut states[0], &current, &mut out.records_examined);
        out.charsets_enumerated += 1;
        merge_candidates(&mut merged, base);

        let all_extra: Vec<char> = self.present.iter().filter(|&c| c != '\n').collect();
        loop {
            let remaining: Vec<char> = all_extra
                .iter()
                .copied()
                .filter(|c| !current.contains(*c))
                .collect();
            if remaining.is_empty() {
                break;
            }

            // Evaluate every one-character extension in parallel: extension costs are
            // skewed the same way mask costs are (each added character grows the kept
            // token mass), so workers claim extensions one at a time from an atomic queue
            // and results are re-sorted by extension index before the selection replay.
            let workers = effective_workers(max_workers, remaining.len(), 1);
            while states.len() < workers {
                states.push(WorkerState::default());
            }
            let remaining_ref = &remaining;
            let current_set = current;
            let queue = WorkQueue::new(remaining.len(), 1);
            let queue = &queue;
            let mut indexed: Vec<(usize, Vec<Candidate>, usize)> = std::thread::scope(|scope| {
                let handles: Vec<_> = states
                    .iter_mut()
                    .take(workers)
                    .map(|state| {
                        scope.spawn(move || {
                            let mut done = Vec::new();
                            while let Some(range) = queue.claim() {
                                for i in range {
                                    let mut candidate_set = current_set;
                                    candidate_set.insert(remaining_ref[i]);
                                    let mut records = 0usize;
                                    let found = self.candidates_for_charset(
                                        state,
                                        &candidate_set,
                                        &mut records,
                                    );
                                    done.push((i, found, records));
                                }
                            }
                            done
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("generation worker panicked"))
                    .collect()
            });
            indexed.sort_by_key(|(i, _, _)| *i);

            // Replay the sequential selection over the evaluations, in `remaining` order.
            out.charsets_enumerated += remaining.len();
            let mut best: Option<(char, f64, Vec<Candidate>)> = None;
            for (&c, (_, found, records)) in remaining.iter().zip(indexed) {
                out.records_examined += records;
                let score = found
                    .iter()
                    .map(Candidate::assimilation_score)
                    .fold(0.0_f64, f64::max);
                let better = match &best {
                    None => !found.is_empty(),
                    Some((_, best_score, _)) => score > *best_score,
                };
                if better {
                    best = Some((c, score, found));
                }
            }
            match best {
                Some((c, _score, found)) if !found.is_empty() => {
                    current.insert(c);
                    merge_candidates(&mut merged, found);
                }
                // No extension produced a template with at least α% coverage: stop growing.
                _ => break,
            }
        }

        out.candidates = merged.into_values().collect();
        sort_candidates(&mut out.candidates);
        out
    }
}

// ---------------------------------------------------------------------------------------
// Legacy backend (differential-testing oracle and benchmark baseline)
// ---------------------------------------------------------------------------------------

mod legacy {
    use super::*;

    /// Enumerates all subsets of the present candidate characters (always keeping `\n`) and
    /// collects candidates from each, sequentially re-tokenizing the sample per subset.
    pub(super) fn exhaustive_search(
        sample: &Dataset,
        present: &CharSet,
        config: &DatamaranConfig,
    ) -> GenerationOutput {
        let extra: Vec<char> = present.iter().filter(|&c| c != '\n').collect();
        let mut out = GenerationOutput {
            sample_len: sample.len(),
            ..Default::default()
        };
        let mut merged: HashMap<StructureTemplate, Candidate> = HashMap::new();

        for mask in 0u64..(1u64 << extra.len()) {
            let charset = mask_to_charset(mask, &extra);
            let found = generate_for_charset(sample, &charset, config, &mut out.records_examined);
            out.charsets_enumerated += 1;
            merge_candidates(&mut merged, found);
        }

        out.candidates = merged.into_values().collect();
        sort_candidates(&mut out.candidates);
        out
    }

    /// The greedy `RT-CharSet` search of Appendix 9.1, single-threaded.
    pub(super) fn greedy_search(
        sample: &Dataset,
        present: &CharSet,
        config: &DatamaranConfig,
    ) -> GenerationOutput {
        let mut out = GenerationOutput {
            sample_len: sample.len(),
            ..Default::default()
        };
        let mut merged: HashMap<StructureTemplate, Candidate> = HashMap::new();

        let mut current = CharSet::from_chars(['\n']);
        let base = generate_for_charset(sample, &current, config, &mut out.records_examined);
        out.charsets_enumerated += 1;
        merge_candidates(&mut merged, base);

        let all_extra: Vec<char> = present.iter().filter(|&c| c != '\n').collect();
        loop {
            let remaining: Vec<char> = all_extra
                .iter()
                .copied()
                .filter(|c| !current.contains(*c))
                .collect();
            if remaining.is_empty() {
                break;
            }
            let mut best: Option<(char, f64, Vec<Candidate>)> = None;
            for &c in &remaining {
                let mut candidate_set = current;
                candidate_set.insert(c);
                let found =
                    generate_for_charset(sample, &candidate_set, config, &mut out.records_examined);
                out.charsets_enumerated += 1;
                let score = found
                    .iter()
                    .map(Candidate::assimilation_score)
                    .fold(0.0_f64, f64::max);
                let better = match &best {
                    None => !found.is_empty(),
                    Some((_, best_score, _)) => score > *best_score,
                };
                if better {
                    best = Some((c, score, found));
                }
            }
            match best {
                Some((c, _score, found)) if !found.is_empty() => {
                    current.insert(c);
                    merge_candidates(&mut merged, found);
                }
                // No extension produced a template with at least α% coverage: stop growing.
                _ => break,
            }
        }

        out.candidates = merged.into_values().collect();
        sort_candidates(&mut out.candidates);
        out
    }

    /// Steps 2–5 of the generation procedure for a single `RT-CharSet` value, re-tokenizing
    /// every line from scratch (the pre-span implementation).
    pub(super) fn generate_for_charset(
        sample: &Dataset,
        charset: &CharSet,
        config: &DatamaranConfig,
        records_examined: &mut usize,
    ) -> Vec<Candidate> {
        let n = sample.line_count();
        if n == 0 {
            return Vec::new();
        }

        // Pre-tokenize every line once for this charset.
        let line_tokens: Vec<Vec<TemplateToken>> = (0..n)
            .map(|i| {
                RecordTemplate::from_instantiated(sample.line(i), charset)
                    .tokens()
                    .to_vec()
            })
            .collect();
        let line_field_len: Vec<usize> = (0..n)
            .map(|i| crate::record::field_char_len(sample.line(i), charset))
            .collect();
        let line_len: Vec<usize> = (0..n).map(|i| sample.line(i).len()).collect();

        // Memoize the reduction of identical token sequences: log lines repeat heavily, so
        // most candidate records share their minimal structure template with an earlier one.
        let mut memo: HashMap<Vec<TemplateToken>, StructureTemplate> = HashMap::new();
        let mut bins: HashMap<StructureTemplate, Accum> = HashMap::new();

        let max_span = config.max_line_span.max(1);
        let mut buffer: Vec<TemplateToken> = Vec::new();

        for start in 0..n {
            buffer.clear();
            let mut span_bytes = 0usize;
            let mut span_field_bytes = 0usize;
            let start_byte = sample.line_start(start);
            for span in 1..=max_span {
                let end = start + span;
                if end > n {
                    break;
                }
                buffer.extend_from_slice(&line_tokens[end - 1]);
                span_bytes += line_len[end - 1];
                span_field_bytes += line_field_len[end - 1];
                *records_examined += 1;

                let template = match memo.get(buffer.as_slice()) {
                    Some(t) => t.clone(),
                    None => {
                        let rt = RecordTemplate::from_tokens(buffer.clone());
                        let t = reduce(&rt);
                        memo.insert(buffer.clone(), t.clone());
                        t
                    }
                };
                if template.is_empty() {
                    continue;
                }
                bins.entry(template)
                    .or_insert_with(|| Accum {
                        first_line: start,
                        ..Default::default()
                    })
                    .record_candidate(start, start_byte, span_bytes, span_field_bytes);
            }
        }

        let threshold = (config.alpha * sample.len() as f64).ceil() as usize;
        bins.into_iter()
            .filter(|(_, acc)| acc.coverage >= threshold.max(1))
            .map(|(template, acc)| Candidate {
                template,
                coverage: acc.coverage,
                field_coverage: acc.field_coverage,
                hits: acc.hits,
                first_line: acc.first_line,
                charset: *charset,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatamaranConfig;

    fn single_line_log(n: usize) -> String {
        let mut s = String::new();
        for i in 0..n {
            s.push_str(&format!(
                "[{:02}:{:02}:{:02}] 10.0.{}.{} GET /index\n",
                i % 24,
                i % 60,
                i % 60,
                i % 256,
                (i * 7) % 256
            ));
        }
        s
    }

    fn config() -> DatamaranConfig {
        DatamaranConfig::default().with_max_line_span(3)
    }

    #[test]
    fn finds_single_line_template_with_high_coverage() {
        let data = Dataset::new(single_line_log(200));
        let out = generate(&data, &config());
        assert!(!out.candidates.is_empty());
        // The best-assimilation candidate should be a single-line template covering most of
        // the dataset.
        let best = &out.candidates[0];
        assert!(best.coverage > data.len() / 2, "coverage {}", best.coverage);
        assert_eq!(
            best.template.min_line_span(),
            1,
            "template: {}",
            best.template
        );
    }

    #[test]
    fn exhaustive_enumerates_multiple_charsets() {
        let data = Dataset::new(single_line_log(50));
        let out = generate(&data, &config());
        assert!(out.charsets_enumerated > 1);
        assert!(out.records_examined > 50);
    }

    #[test]
    fn greedy_finds_a_comparable_template() {
        let data = Dataset::new(single_line_log(200));
        let exh = generate(&data, &config());
        let grd = generate(&data, &config().with_search(SearchStrategy::Greedy));
        assert!(!grd.candidates.is_empty());
        // Greedy enumerates far fewer charsets than exhaustive.
        assert!(grd.charsets_enumerated <= exh.charsets_enumerated);
        // Both find a dominant single-line template.
        assert_eq!(grd.candidates[0].template.min_line_span(), 1);
    }

    #[test]
    fn multi_line_records_are_captured_within_span_limit() {
        // Two-line records: a header line and a detail line.
        let mut s = String::new();
        for i in 0..100 {
            s.push_str(&format!("BEGIN {i}\nvalue={i};status=ok\n"));
        }
        let data = Dataset::new(s);
        let out = generate(&data, &DatamaranConfig::default().with_max_line_span(4));
        // Some candidate must span 2 lines.
        assert!(
            out.candidates
                .iter()
                .any(|c| c.template.min_line_span() >= 2),
            "no multi-line candidate found"
        );
    }

    #[test]
    fn coverage_threshold_filters_rare_templates() {
        // 95 csv lines and 5 odd lines: the odd lines' template cannot reach 10% coverage.
        let mut s = String::new();
        for i in 0..95 {
            s.push_str(&format!("{i},{},{}\n", i * 2, i * 3));
        }
        for _ in 0..5 {
            s.push_str("### noise ###\n");
        }
        let data = Dataset::new(s);
        let out = generate(&data, &config().with_alpha(0.2));
        for cand in &out.candidates {
            assert!(cand.coverage >= (0.2 * data.len() as f64) as usize);
        }
    }

    #[test]
    fn assimilation_score_prefers_more_structured_template() {
        // For the bracketed log, the template that recognises ':' and '.' as formatting has a
        // larger non-field coverage than the one that treats them as field content.
        let data = Dataset::new(single_line_log(100));
        let out = generate(&data, &config());
        let best = &out.candidates[0];
        let best_score = best.assimilation_score();
        for c in &out.candidates {
            assert!(best_score >= c.assimilation_score());
        }
        assert!(best.non_field_coverage() > 0);
    }

    #[test]
    fn empty_dataset_produces_no_candidates() {
        let data = Dataset::new("");
        let out = generate(&data, &config());
        assert!(out.candidates.is_empty());
        assert_eq!(out.records_examined, 0);
    }

    #[test]
    fn candidate_non_field_coverage_never_exceeds_coverage() {
        let data = Dataset::new(single_line_log(80));
        let out = generate(&data, &config());
        for c in &out.candidates {
            assert!(c.non_field_coverage() <= c.coverage);
            assert!(c.hits > 0);
        }
    }

    fn workloads() -> Vec<(&'static str, String)> {
        let mut multi = String::new();
        for i in 0..120 {
            multi.push_str(&format!("REQ {i}\nuser=u{};ms={}\n", i % 9, (i * 37) % 500));
            if i % 11 == 0 {
                multi.push_str("## banner ##\n");
            }
        }
        let mut csv = String::new();
        for i in 0..150 {
            csv.push_str(&format!("{i},{},{},\"x,y\"\n", i * 2, i % 7));
        }
        vec![
            ("weblog", single_line_log(150)),
            ("multiline", multi),
            ("csv_quoted", csv),
            ("tiny", "a b\n".to_string()),
            ("no_trailing_newline", "k=1\nk=2\nk=3".to_string()),
        ]
    }

    #[test]
    fn span_backend_matches_legacy_exhaustive() {
        for (name, text) in workloads() {
            let data = Dataset::new(text);
            let spans = generate(
                &data,
                &config().with_generation_backend(GenerationBackend::Spans),
            );
            let legacy = generate(
                &data,
                &config().with_generation_backend(GenerationBackend::Legacy),
            );
            assert_outputs_identical(&spans, &legacy, name);
        }
    }

    #[test]
    fn span_backend_matches_legacy_greedy() {
        for (name, text) in workloads() {
            let data = Dataset::new(text);
            let base = config().with_search(SearchStrategy::Greedy);
            let spans = generate(
                &data,
                &base
                    .clone()
                    .with_generation_backend(GenerationBackend::Spans),
            );
            let legacy = generate(
                &data,
                &base
                    .clone()
                    .with_generation_backend(GenerationBackend::Legacy),
            );
            assert_outputs_identical(&spans, &legacy, name);
        }
    }

    #[test]
    fn span_backend_is_thread_count_invariant() {
        let data = Dataset::new(single_line_log(120));
        let sequential = generate(&data, &config().with_generation_threads(1));
        for threads in [2, 3, 8] {
            let parallel = generate(&data, &config().with_generation_threads(threads));
            assert_outputs_identical(&sequential, &parallel, &format!("{threads} threads"));
        }
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(GenerationBackend::Spans.name(), "spans");
        assert_eq!(GenerationBackend::Legacy.name(), "legacy");
        assert_eq!(GenerationBackend::default(), GenerationBackend::Spans);
    }
}
