//! The generation step (§4.1, Algorithm 1): find structure templates satisfying the coverage
//! threshold assumption by enumerating `RT-CharSet` values and candidate record boundaries,
//! reducing every candidate record to its minimal structure template, and accumulating
//! per-template coverage in a hash table.

use crate::chars::CharSet;
use crate::config::{DatamaranConfig, SearchStrategy};
use crate::dataset::Dataset;
use crate::record::{RecordTemplate, TemplateToken};
use crate::reduce::reduce;
use crate::structure::StructureTemplate;
use std::collections::HashMap;

/// A candidate structure template produced by the generation step, with the statistics needed
/// by the pruning step.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The (minimal) structure template.
    pub template: StructureTemplate,
    /// Total number of bytes of candidate records that reduced to this template
    /// (the paper's coverage, `Cov(T, S)`).
    pub coverage: usize,
    /// Total number of bytes covered by field values inside those candidate records.
    pub field_coverage: usize,
    /// Number of candidate records that reduced to this template.
    pub hits: usize,
    /// Line index of the earliest candidate record observed (used by structure shifting).
    pub first_line: usize,
    /// The `RT-CharSet` under which the candidate was generated.
    pub charset: CharSet,
}

impl Candidate {
    /// The Non-Field-Coverage term of §4.2: bytes covered by formatting characters.
    pub fn non_field_coverage(&self) -> usize {
        self.coverage.saturating_sub(self.field_coverage)
    }

    /// The assimilation score `G(T, S) = Cov(T, S) × Non_Field_Cov(T, S)`.
    pub fn assimilation_score(&self) -> f64 {
        self.coverage as f64 * self.non_field_coverage() as f64
    }
}

/// Output of the generation step.
#[derive(Clone, Debug, Default)]
pub struct GenerationOutput {
    /// All candidate templates whose estimated coverage reaches the `α%` threshold.
    pub candidates: Vec<Candidate>,
    /// Size in bytes of the sample the step ran on.
    pub sample_len: usize,
    /// Number of `RT-CharSet` values enumerated (the paper's step-1 loop).
    pub charsets_enumerated: usize,
    /// Number of candidate records examined across all character sets.
    pub records_examined: usize,
}

/// Accumulator stored in the generation hash table for one structure template.
#[derive(Clone, Debug, Default)]
struct Accum {
    coverage: usize,
    field_coverage: usize,
    hits: usize,
    first_line: usize,
    /// Byte offset up to which this bin's coverage has already been counted.  Candidate
    /// records overlap heavily (every pair of nearby line boundaries is a candidate), so
    /// without de-duplication a template that merely stacks `k` copies of a single-line
    /// template would count every byte `k` times and dominate the assimilation ranking.
    covered_until: usize,
}

/// Runs the generation step over a (sampled) dataset.
pub fn generate(sample: &Dataset, config: &DatamaranConfig) -> GenerationOutput {
    let present = config
        .special_chars
        .restrict_to_text(sample.text())
        .union(&CharSet::from_chars(['\n']));

    match config.search {
        SearchStrategy::Exhaustive => {
            // Fall back to the greedy procedure when 2^c would be unreasonably large.
            let extra_chars = present.len().saturating_sub(1);
            if extra_chars > config.max_exhaustive_chars {
                greedy_search(sample, &present, config)
            } else {
                exhaustive_search(sample, &present, config)
            }
        }
        SearchStrategy::Greedy => greedy_search(sample, &present, config),
    }
}

/// Enumerates all subsets of the present candidate characters (always keeping `\n`) and
/// collects candidates from each.
fn exhaustive_search(
    sample: &Dataset,
    present: &CharSet,
    config: &DatamaranConfig,
) -> GenerationOutput {
    let extra: Vec<char> = present.iter().filter(|&c| c != '\n').collect();
    let mut out = GenerationOutput {
        sample_len: sample.len(),
        ..Default::default()
    };
    let mut merged: HashMap<StructureTemplate, Candidate> = HashMap::new();

    for mask in 0u64..(1u64 << extra.len()) {
        let mut charset = CharSet::from_chars(['\n']);
        for (bit, &c) in extra.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                charset.insert(c);
            }
        }
        let found = generate_for_charset(sample, &charset, config, &mut out.records_examined);
        out.charsets_enumerated += 1;
        merge_candidates(&mut merged, found);
    }

    out.candidates = merged.into_values().collect();
    sort_candidates(&mut out.candidates);
    out
}

/// The greedy `RT-CharSet` search of Appendix 9.1: grow the character set one character at a
/// time, always adding the character whose induced structure templates achieve the highest
/// assimilation score.
fn greedy_search(
    sample: &Dataset,
    present: &CharSet,
    config: &DatamaranConfig,
) -> GenerationOutput {
    let mut out = GenerationOutput {
        sample_len: sample.len(),
        ..Default::default()
    };
    let mut merged: HashMap<StructureTemplate, Candidate> = HashMap::new();

    let mut current = CharSet::from_chars(['\n']);
    let base = generate_for_charset(sample, &current, config, &mut out.records_examined);
    out.charsets_enumerated += 1;
    merge_candidates(&mut merged, base);

    let all_extra: Vec<char> = present.iter().filter(|&c| c != '\n').collect();
    loop {
        let remaining: Vec<char> = all_extra
            .iter()
            .copied()
            .filter(|c| !current.contains(*c))
            .collect();
        if remaining.is_empty() {
            break;
        }
        let mut best: Option<(char, f64, Vec<Candidate>)> = None;
        for &c in &remaining {
            let mut candidate_set = current;
            candidate_set.insert(c);
            let found =
                generate_for_charset(sample, &candidate_set, config, &mut out.records_examined);
            out.charsets_enumerated += 1;
            let score = found
                .iter()
                .map(Candidate::assimilation_score)
                .fold(0.0_f64, f64::max);
            let better = match &best {
                None => !found.is_empty(),
                Some((_, best_score, _)) => score > *best_score,
            };
            if better {
                best = Some((c, score, found));
            }
        }
        match best {
            Some((c, _score, found)) if !found.is_empty() => {
                current.insert(c);
                merge_candidates(&mut merged, found);
            }
            // No extension produced a template with at least α% coverage: stop growing.
            _ => break,
        }
    }

    out.candidates = merged.into_values().collect();
    sort_candidates(&mut out.candidates);
    out
}

/// Steps 2–5 of the generation procedure for a single `RT-CharSet` value: enumerate all
/// candidate record boundaries spanning at most `L` lines, reduce each candidate record to its
/// minimal structure template, and keep the templates whose accumulated coverage reaches the
/// `α%` threshold.
fn generate_for_charset(
    sample: &Dataset,
    charset: &CharSet,
    config: &DatamaranConfig,
    records_examined: &mut usize,
) -> Vec<Candidate> {
    let n = sample.line_count();
    if n == 0 {
        return Vec::new();
    }

    // Pre-tokenize every line once for this charset.
    let line_tokens: Vec<Vec<TemplateToken>> = (0..n)
        .map(|i| {
            RecordTemplate::from_instantiated(sample.line(i), charset)
                .tokens()
                .to_vec()
        })
        .collect();
    let line_field_len: Vec<usize> = (0..n)
        .map(|i| crate::record::field_char_len(sample.line(i), charset))
        .collect();
    let line_len: Vec<usize> = (0..n).map(|i| sample.line(i).len()).collect();

    // Memoize the reduction of identical token sequences: log lines repeat heavily, so most
    // candidate records share their minimal structure template with an earlier one.
    let mut memo: HashMap<Vec<TemplateToken>, StructureTemplate> = HashMap::new();
    let mut bins: HashMap<StructureTemplate, Accum> = HashMap::new();

    let max_span = config.max_line_span.max(1);
    let mut buffer: Vec<TemplateToken> = Vec::new();

    for start in 0..n {
        buffer.clear();
        let mut span_bytes = 0usize;
        let mut span_field_bytes = 0usize;
        let start_byte = sample.line_start(start);
        for span in 1..=max_span {
            let end = start + span;
            if end > n {
                break;
            }
            buffer.extend_from_slice(&line_tokens[end - 1]);
            span_bytes += line_len[end - 1];
            span_field_bytes += line_field_len[end - 1];
            *records_examined += 1;

            let template = match memo.get(buffer.as_slice()) {
                Some(t) => t.clone(),
                None => {
                    let rt = RecordTemplate::from_tokens(buffer.clone());
                    let t = reduce(&rt);
                    memo.insert(buffer.clone(), t.clone());
                    t
                }
            };
            if template.is_empty() {
                continue;
            }
            let acc = bins.entry(template).or_insert_with(|| Accum {
                first_line: start,
                ..Default::default()
            });
            // Count only the bytes this bin has not covered yet (candidates are visited in
            // increasing start order, so a single high-water mark suffices).
            let end_byte = start_byte + span_bytes;
            let new_bytes = end_byte.saturating_sub(start_byte.max(acc.covered_until));
            if new_bytes > 0 {
                acc.coverage += new_bytes;
                // Field bytes are apportioned pro rata to the newly covered fraction.
                let scaled = (span_field_bytes as f64 * new_bytes as f64 / span_bytes.max(1) as f64)
                    .round() as usize;
                acc.field_coverage += scaled.min(new_bytes);
                acc.covered_until = acc.covered_until.max(end_byte);
            }
            acc.hits += 1;
            if start < acc.first_line {
                acc.first_line = start;
            }
        }
    }

    let threshold = (config.alpha * sample.len() as f64).ceil() as usize;
    bins.into_iter()
        .filter(|(_, acc)| acc.coverage >= threshold.max(1))
        .map(|(template, acc)| Candidate {
            template,
            coverage: acc.coverage,
            field_coverage: acc.field_coverage,
            hits: acc.hits,
            first_line: acc.first_line,
            charset: *charset,
        })
        .collect()
}

/// Merges per-charset candidate lists, keeping for each template the occurrence with the
/// largest coverage (the same template can be discovered under several character sets).
fn merge_candidates(merged: &mut HashMap<StructureTemplate, Candidate>, found: Vec<Candidate>) {
    for cand in found {
        match merged.get_mut(&cand.template) {
            Some(existing) => {
                if cand.coverage > existing.coverage {
                    *existing = cand;
                }
            }
            None => {
                merged.insert(cand.template.clone(), cand);
            }
        }
    }
}

/// Orders candidates by descending assimilation score (ties broken by template size for
/// determinism).
pub fn sort_candidates(candidates: &mut [Candidate]) {
    candidates.sort_by(|a, b| {
        b.assimilation_score()
            .partial_cmp(&a.assimilation_score())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.template.description_chars().cmp(&b.template.description_chars()))
            .then_with(|| a.template.canonical_string().cmp(&b.template.canonical_string()))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatamaranConfig;

    fn single_line_log(n: usize) -> String {
        let mut s = String::new();
        for i in 0..n {
            s.push_str(&format!("[{:02}:{:02}:{:02}] 10.0.{}.{} GET /index\n", i % 24, i % 60, i % 60, i % 256, (i * 7) % 256));
        }
        s
    }

    fn config() -> DatamaranConfig {
        DatamaranConfig::default().with_max_line_span(3)
    }

    #[test]
    fn finds_single_line_template_with_high_coverage() {
        let data = Dataset::new(single_line_log(200));
        let out = generate(&data, &config());
        assert!(!out.candidates.is_empty());
        // The best-assimilation candidate should be a single-line template covering most of
        // the dataset.
        let best = &out.candidates[0];
        assert!(best.coverage > data.len() / 2, "coverage {}", best.coverage);
        assert_eq!(best.template.min_line_span(), 1, "template: {}", best.template);
    }

    #[test]
    fn exhaustive_enumerates_multiple_charsets() {
        let data = Dataset::new(single_line_log(50));
        let out = generate(&data, &config());
        assert!(out.charsets_enumerated > 1);
        assert!(out.records_examined > 50);
    }

    #[test]
    fn greedy_finds_a_comparable_template() {
        let data = Dataset::new(single_line_log(200));
        let exh = generate(&data, &config());
        let grd = generate(
            &data,
            &config().with_search(SearchStrategy::Greedy),
        );
        assert!(!grd.candidates.is_empty());
        // Greedy enumerates far fewer charsets than exhaustive.
        assert!(grd.charsets_enumerated <= exh.charsets_enumerated);
        // Both find a dominant single-line template.
        assert_eq!(grd.candidates[0].template.min_line_span(), 1);
    }

    #[test]
    fn multi_line_records_are_captured_within_span_limit() {
        // Two-line records: a header line and a detail line.
        let mut s = String::new();
        for i in 0..100 {
            s.push_str(&format!("BEGIN {i}\nvalue={i};status=ok\n"));
        }
        let data = Dataset::new(s);
        let out = generate(&data, &DatamaranConfig::default().with_max_line_span(4));
        // Some candidate must span 2 lines.
        assert!(
            out.candidates
                .iter()
                .any(|c| c.template.min_line_span() >= 2),
            "no multi-line candidate found"
        );
    }

    #[test]
    fn coverage_threshold_filters_rare_templates() {
        // 95 csv lines and 5 odd lines: the odd lines' template cannot reach 10% coverage.
        let mut s = String::new();
        for i in 0..95 {
            s.push_str(&format!("{i},{},{}\n", i * 2, i * 3));
        }
        for _ in 0..5 {
            s.push_str("### noise ###\n");
        }
        let data = Dataset::new(s);
        let out = generate(&data, &config().with_alpha(0.2));
        for cand in &out.candidates {
            assert!(cand.coverage >= (0.2 * data.len() as f64) as usize);
        }
    }

    #[test]
    fn assimilation_score_prefers_more_structured_template() {
        // For the bracketed log, the template that recognises ':' and '.' as formatting has a
        // larger non-field coverage than the one that treats them as field content.
        let data = Dataset::new(single_line_log(100));
        let out = generate(&data, &config());
        let best = &out.candidates[0];
        let best_score = best.assimilation_score();
        for c in &out.candidates {
            assert!(best_score >= c.assimilation_score());
        }
        assert!(best.non_field_coverage() > 0);
    }

    #[test]
    fn empty_dataset_produces_no_candidates() {
        let data = Dataset::new("");
        let out = generate(&data, &config());
        assert!(out.candidates.is_empty());
        assert_eq!(out.records_examined, 0);
    }

    #[test]
    fn candidate_non_field_coverage_never_exceeds_coverage() {
        let data = Dataset::new(single_line_log(80));
        let out = generate(&data, &config());
        for c in &out.candidates {
            assert!(c.non_field_coverage() <= c.coverage);
            assert!(c.hits > 0);
        }
    }
}
