//! Character-set handling for record templates.
//!
//! Datamaran's non-overlapping assumption (Assumption 2 in the paper) splits every
//! instantiated record into *formatting* characters (members of `RT-CharSet`) and *field*
//! characters (everything else).  `RT-CharSet` is always a subset of a predefined candidate
//! set of special characters, `RT-CharSet-Candidate`, which this module models as a compact
//! bitset over the Latin-1 range.  Characters above U+00FF can never be formatting characters
//! and are always treated as field content.

use std::fmt;

/// Number of 64-bit words backing the bitset (covers code points 0..=255).
const WORDS: usize = 4;

/// A set of candidate formatting characters (a subset of the Latin-1 range).
///
/// `CharSet` is the representation used for both `RT-CharSet-Candidate` (the global candidate
/// pool) and the per-template `RT-CharSet` values enumerated during the generation step.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CharSet {
    bits: [u64; WORDS],
}

impl CharSet {
    /// Creates an empty character set.
    pub const fn new() -> Self {
        CharSet { bits: [0; WORDS] }
    }

    /// Creates a set from an iterator of characters. Characters outside the Latin-1 range are
    /// ignored (they can never be formatting characters).
    pub fn from_chars<I: IntoIterator<Item = char>>(chars: I) -> Self {
        let mut set = CharSet::new();
        for c in chars {
            set.insert(c);
        }
        set
    }

    /// Inserts a character. Returns `true` if the character was newly inserted.
    /// Characters above U+00FF are ignored and `false` is returned.
    pub fn insert(&mut self, c: char) -> bool {
        let cp = c as u32;
        if cp > 0xFF {
            return false;
        }
        let (w, b) = (cp as usize / 64, cp as usize % 64);
        let already = self.bits[w] & (1 << b) != 0;
        self.bits[w] |= 1 << b;
        !already
    }

    /// Removes a character from the set.
    pub fn remove(&mut self, c: char) {
        let cp = c as u32;
        if cp > 0xFF {
            return;
        }
        let (w, b) = (cp as usize / 64, cp as usize % 64);
        self.bits[w] &= !(1 << b);
    }

    /// Returns `true` if the character is a member of the set.
    #[inline]
    pub fn contains(&self, c: char) -> bool {
        let cp = c as u32;
        if cp > 0xFF {
            return false;
        }
        let (w, b) = (cp as usize / 64, cp as usize % 64);
        self.bits[w] & (1 << b) != 0
    }

    /// Number of characters in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set contains no characters.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Returns the union of `self` and `other`.
    pub fn union(&self, other: &CharSet) -> CharSet {
        let mut bits = [0u64; WORDS];
        for (i, word) in bits.iter_mut().enumerate() {
            *word = self.bits[i] | other.bits[i];
        }
        CharSet { bits }
    }

    /// Returns the intersection of `self` and `other`.
    pub fn intersection(&self, other: &CharSet) -> CharSet {
        let mut bits = [0u64; WORDS];
        for (i, word) in bits.iter_mut().enumerate() {
            *word = self.bits[i] & other.bits[i];
        }
        CharSet { bits }
    }

    /// Returns `true` if every character of `self` is also in `other`.
    pub fn is_subset(&self, other: &CharSet) -> bool {
        (0..WORDS).all(|i| self.bits[i] & !other.bits[i] == 0)
    }

    /// Returns `true` if the two sets share no characters.
    pub fn is_disjoint(&self, other: &CharSet) -> bool {
        (0..WORDS).all(|i| self.bits[i] & other.bits[i] == 0)
    }

    /// Iterates over the member characters in code-point order.
    pub fn iter(&self) -> impl Iterator<Item = char> + '_ {
        (0u32..=0xFF)
            .filter(move |&cp| {
                let (w, b) = (cp as usize / 64, cp as usize % 64);
                self.bits[w] & (1 << b) != 0
            })
            .map(|cp| char::from_u32(cp).expect("latin-1 code points are valid chars"))
    }

    /// Total order on charsets matching the generation step's subset-enumeration order: the
    /// bitsets compared as one big-endian integer, so of two sets differing in their highest
    /// character, the one *without* it sorts first — exactly the order in which the
    /// exhaustive search visits subset masks.  Used as the deterministic tie-break when the
    /// same template is discovered under several charsets (possibly on different threads).
    pub fn cmp_enumeration_order(&self, other: &CharSet) -> std::cmp::Ordering {
        for i in (0..WORDS).rev() {
            match self.bits[i].cmp(&other.bits[i]) {
                std::cmp::Ordering::Equal => continue,
                unequal => return unequal,
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Restricts the set to the characters actually present in `text`.
    ///
    /// The generation step only enumerates subsets of the candidate characters that occur in
    /// the dataset (the paper's `c` parameter counts exactly these).
    pub fn restrict_to_text(&self, text: &str) -> CharSet {
        let mut present = CharSet::new();
        for c in text.chars() {
            if self.contains(c) {
                present.insert(c);
            }
        }
        present
    }
}

impl fmt::Debug for CharSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CharSet{{")?;
        for c in self.iter() {
            if c == '\n' {
                write!(f, "\\n")?;
            } else if c == '\t' {
                write!(f, "\\t")?;
            } else {
                write!(f, "{c}")?;
            }
        }
        write!(f, "}}")
    }
}

impl FromIterator<char> for CharSet {
    fn from_iter<T: IntoIterator<Item = char>>(iter: T) -> Self {
        CharSet::from_chars(iter)
    }
}

/// The default `RT-CharSet-Candidate`: the characters that may ever act as record-template
/// formatting characters.
///
/// This mirrors the fixed candidate pool used by the paper's implementation: punctuation,
/// brackets, quotes, whitespace and the end-of-line character.  Alphanumeric characters are
/// never formatting characters.
pub fn default_special_chars() -> CharSet {
    CharSet::from_chars([
        '\n', '\t', ' ', ',', ';', ':', '.', '|', '=', '#', '@', '&', '%', '$', '*', '+', '-', '/',
        '\\', '<', '>', '(', ')', '[', ']', '{', '}', '"', '\'', '!', '?', '~', '^',
    ])
}

/// Field-placeholder character used in the textual rendering of record and structure
/// templates (the paper's `F`).
pub const FIELD_PLACEHOLDER: char = '\u{1}';

/// Renders a template character for human consumption (`F` for the placeholder,
/// escape sequences for whitespace).
pub fn display_char(c: char) -> String {
    match c {
        FIELD_PLACEHOLDER => "F".to_string(),
        '\n' => "\\n".to_string(),
        '\t' => "\\t".to_string(),
        c => c.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut set = CharSet::new();
        assert!(set.is_empty());
        assert!(set.insert(','));
        assert!(!set.insert(','));
        assert!(set.contains(','));
        assert!(!set.contains(';'));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn non_latin1_characters_are_ignored() {
        let mut set = CharSet::new();
        // 'é' is Latin-1 (U+00E9): accepted.
        assert!(set.insert('é'));
        assert!(set.contains('é'));
        // '日' is outside the Latin-1 range: silently ignored.
        assert!(!set.insert('日'));
        assert!(!set.contains('日'));
    }

    #[test]
    fn from_chars_and_iter_roundtrip() {
        let set = CharSet::from_chars("[]:, \n".chars());
        let collected: CharSet = set.iter().collect();
        assert_eq!(set, collected);
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn union_intersection_subset() {
        let a = CharSet::from_chars(",;".chars());
        let b = CharSet::from_chars(";:".chars());
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        let i = a.intersection(&b);
        assert_eq!(i.len(), 1);
        assert!(i.contains(';'));
        assert!(a.is_subset(&u));
        assert!(b.is_subset(&u));
        assert!(!u.is_subset(&a));
    }

    #[test]
    fn disjointness() {
        let a = CharSet::from_chars(",;".chars());
        let b = CharSet::from_chars(":|".chars());
        assert!(a.is_disjoint(&b));
        let c = CharSet::from_chars(";|".chars());
        assert!(!a.is_disjoint(&c));
    }

    #[test]
    fn restrict_to_text_keeps_only_present_chars() {
        let candidate = default_special_chars();
        let present = candidate.restrict_to_text("[12:30] hello,world\n");
        assert!(present.contains('['));
        assert!(present.contains(']'));
        assert!(present.contains(':'));
        assert!(present.contains(','));
        assert!(present.contains(' '));
        assert!(present.contains('\n'));
        assert!(!present.contains(';'));
        assert!(!present.contains('|'));
    }

    #[test]
    fn default_special_chars_excludes_alphanumerics() {
        let set = default_special_chars();
        for c in "abcXYZ0129".chars() {
            assert!(!set.contains(c), "{c} must not be a special character");
        }
        assert!(set.contains('\n'));
        assert!(set.contains(' '));
    }

    #[test]
    fn remove_works() {
        let mut set = CharSet::from_chars(",;".chars());
        set.remove(',');
        assert!(!set.contains(','));
        assert!(set.contains(';'));
    }

    #[test]
    fn display_char_escapes() {
        assert_eq!(display_char('\n'), "\\n");
        assert_eq!(display_char('\t'), "\\t");
        assert_eq!(display_char(FIELD_PLACEHOLDER), "F");
        assert_eq!(display_char('x'), "x");
    }
}
