//! Record templates and their extraction from instantiated records.
//!
//! A *record template* (Definition 2.1) is a string over the field-placeholder character `F`
//! and ordinary characters.  Under the non-overlapping assumption (Assumption 2) the template
//! characters are drawn from `RT-CharSet`, a set of special characters disjoint from the
//! characters appearing inside field values, which means the record template of an
//! instantiated record can be recovered *directly* from the record text: every maximal run of
//! non-member characters collapses into a single `F`, and member characters are kept verbatim.

use crate::chars::{display_char, CharSet};
use std::fmt;

/// One token of a record template: either a field placeholder or a literal formatting
/// character.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TemplateToken {
    /// The field placeholder `F`.
    Field,
    /// A literal formatting character (always a member of the template's `RT-CharSet`).
    Ch(char),
}

/// A record template: the sequence of formatting characters and field placeholders obtained
/// from an instantiated record (Definition 2.1).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct RecordTemplate {
    tokens: Vec<TemplateToken>,
}

impl RecordTemplate {
    /// Builds a record template from an explicit token sequence.
    pub fn from_tokens(tokens: Vec<TemplateToken>) -> Self {
        RecordTemplate { tokens }
    }

    /// Extracts the record template of `text` under the given `RT-CharSet`.
    ///
    /// Every maximal run of characters *not* in `rt_charset` becomes a single
    /// [`TemplateToken::Field`]; characters in `rt_charset` are preserved.
    pub fn from_instantiated(text: &str, rt_charset: &CharSet) -> Self {
        let mut tokens = Vec::with_capacity(text.len() / 2 + 1);
        let mut in_field = false;
        for c in text.chars() {
            if rt_charset.contains(c) {
                tokens.push(TemplateToken::Ch(c));
                in_field = false;
            } else if !in_field {
                tokens.push(TemplateToken::Field);
                in_field = true;
            }
        }
        RecordTemplate { tokens }
    }

    /// The tokens of this template.
    pub fn tokens(&self) -> &[TemplateToken] {
        &self.tokens
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// `true` when the template has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Number of field placeholders in the template.
    pub fn field_count(&self) -> usize {
        self.tokens
            .iter()
            .filter(|t| matches!(t, TemplateToken::Field))
            .count()
    }

    /// The set of formatting characters used by the template.
    pub fn char_set(&self) -> CharSet {
        let mut set = CharSet::new();
        for t in &self.tokens {
            if let TemplateToken::Ch(c) = t {
                set.insert(*c);
            }
        }
        set
    }

    /// Returns `true` if `text` can be generated from this template under `rt_charset`
    /// (Definition 2.1: each `F` replaced by a non-empty string of non-member characters).
    pub fn generates(&self, text: &str, rt_charset: &CharSet) -> bool {
        RecordTemplate::from_instantiated(text, rt_charset) == *self
    }
}

impl fmt::Display for RecordTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tokens {
            match t {
                TemplateToken::Field => write!(f, "F")?,
                TemplateToken::Ch(c) => write!(f, "{}", display_char(*c))?,
            }
        }
        Ok(())
    }
}

/// A field value extracted from an instantiated record, together with its byte span in the
/// record text.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FieldValue {
    /// Byte offset of the first character of the value within the record text.
    pub start: usize,
    /// Byte offset one past the last character of the value.
    pub end: usize,
    /// The value itself.
    pub text: String,
}

/// Extracts the field values of `text` under `rt_charset` (Definition 2.2): the maximal runs
/// of non-member characters, in order.
///
/// This is the owned-copy convenience API; hot paths that only need positions should use
/// [`crate::span::field_spans`] (the shared tokenizer behind both).
pub fn field_values(text: &str, rt_charset: &CharSet) -> Vec<FieldValue> {
    crate::span::field_spans(text, rt_charset)
        .into_iter()
        .map(|span| FieldValue {
            start: span.start as usize,
            end: span.end as usize,
            text: text[span.start as usize..span.end as usize].to_string(),
        })
        .collect()
}

/// Total number of bytes covered by field values in `text` under `rt_charset`.
///
/// This is the quantity subtracted from the coverage to obtain the paper's
/// *Non-Field-Coverage* term of the assimilation score.
pub fn field_char_len(text: &str, rt_charset: &CharSet) -> usize {
    text.chars()
        .filter(|c| !rt_charset.contains(*c))
        .map(|c| c.len_utf8())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(s: &str) -> CharSet {
        CharSet::from_chars(s.chars())
    }

    #[test]
    fn extracts_template_from_csv_line() {
        let rt = RecordTemplate::from_instantiated("1,2,3,45,6\n", &cs(",\n"));
        assert_eq!(rt.to_string(), "F,F,F,F,F\\n");
        assert_eq!(rt.field_count(), 5);
    }

    #[test]
    fn extracts_template_from_bracketed_log_line() {
        let rt = RecordTemplate::from_instantiated("[01:05:02] 192.168.0.1\n", &cs("[]:. \n"));
        assert_eq!(rt.to_string(), "[F:F:F] F.F.F.F\\n");
    }

    #[test]
    fn adjacent_special_chars_produce_no_field() {
        let rt = RecordTemplate::from_instantiated("a,,b\n", &cs(",\n"));
        assert_eq!(rt.to_string(), "F,,F\\n");
        assert_eq!(rt.field_count(), 2);
    }

    #[test]
    fn charset_of_template_contains_only_used_chars() {
        let rt = RecordTemplate::from_instantiated("x=1;y=2\n", &cs("=;,\n"));
        let set = rt.char_set();
        assert!(set.contains('='));
        assert!(set.contains(';'));
        assert!(set.contains('\n'));
        assert!(!set.contains(','));
    }

    #[test]
    fn generates_accepts_other_instantiations() {
        let rt = RecordTemplate::from_instantiated("1,2,3\n", &cs(",\n"));
        assert!(rt.generates("999,abc,x-y\n", &cs(",\n")));
        assert!(!rt.generates("1,2\n", &cs(",\n")));
        assert!(!rt.generates("1,2,3,4\n", &cs(",\n")));
    }

    #[test]
    fn field_values_report_spans_and_text() {
        let values = field_values("[01:05] 192.168.0.1\n", &cs("[]: .\n"));
        let texts: Vec<&str> = values.iter().map(|v| v.text.as_str()).collect();
        assert_eq!(texts, vec!["01", "05", "192", "168", "0", "1"]);
        assert_eq!(values[0].start, 1);
        assert_eq!(values[0].end, 3);
    }

    #[test]
    fn field_values_handle_trailing_field_without_newline() {
        let values = field_values("a,b", &cs(","));
        assert_eq!(values.len(), 2);
        assert_eq!(values[1].text, "b");
        assert_eq!(values[1].end, 3);
    }

    #[test]
    fn field_char_len_counts_non_special_bytes() {
        assert_eq!(field_char_len("ab,cd\n", &cs(",\n")), 4);
        assert_eq!(field_char_len(",,\n", &cs(",\n")), 0);
        assert_eq!(field_char_len("abc", &CharSet::new()), 3);
    }

    #[test]
    fn display_uses_f_placeholder_and_escapes() {
        let rt = RecordTemplate::from_tokens(vec![
            TemplateToken::Field,
            TemplateToken::Ch('\t'),
            TemplateToken::Field,
            TemplateToken::Ch('\n'),
        ]);
        assert_eq!(rt.to_string(), "F\\tF\\n");
    }

    #[test]
    fn empty_text_yields_empty_template() {
        let rt = RecordTemplate::from_instantiated("", &cs(",\n"));
        assert!(rt.is_empty());
        assert_eq!(rt.field_count(), 0);
        assert!(field_values("", &cs(",\n")).is_empty());
    }
}
