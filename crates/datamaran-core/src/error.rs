//! Error type for the Datamaran pipeline.

use std::fmt;

/// Errors produced by the Datamaran pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The configuration contains an out-of-range or inconsistent value.
    InvalidConfig(String),
    /// The input dataset is empty (nothing to extract).
    EmptyDataset,
    /// No structure template satisfying the coverage threshold could be found.
    NoStructureFound,
    /// A structure template failed to match where a match was required
    /// (internal consistency error in the extraction pass).
    ExtractionFailure(String),
    /// An I/O error occurred while reading a stream (streaming extraction only).
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::EmptyDataset => write!(f, "the dataset is empty"),
            Error::NoStructureFound => {
                write!(f, "no structure template satisfies the coverage threshold")
            }
            Error::ExtractionFailure(msg) => write!(f, "extraction failure: {msg}"),
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(Error::InvalidConfig("alpha".into())
            .to_string()
            .contains("alpha"));
        assert!(Error::EmptyDataset.to_string().contains("empty"));
        assert!(Error::NoStructureFound.to_string().contains("coverage"));
        assert!(Error::ExtractionFailure("boom".into())
            .to_string()
            .contains("boom"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&Error::EmptyDataset);
    }
}
