//! Structured, source-preserving error taxonomy for the Datamaran pipeline.
//!
//! Every failure the pipeline can surface is a distinct [`Error`] variant carrying the
//! context a caller needs to react programmatically: I/O errors keep their
//! [`std::io::ErrorKind`] and the path they occurred on, sink failures name the sink and
//! preserve the underlying cause, decode failures carry the input line, and budget
//! violations report which [`BudgetKind`] was exceeded with the limit and the observed
//! value.  The CLI maps each variant onto a stable exit code; the streaming retry layer
//! uses [`Error::is_transient`] to decide what is worth retrying.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Which resource budget a [`Error::BudgetExceeded`] violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// A single input line exceeded the configured byte cap.
    LineBytes,
    /// The resident chunk window exceeded the configured byte cap.
    WindowBytes,
    /// The quarantined fraction of the stream exceeded the configured ceiling
    /// (limit and observed values are reported in parts per 10 000).
    QuarantineFraction,
    /// The cumulative template-match time exceeded the configured ceiling
    /// (limit and observed values are reported in milliseconds).
    MatchSeconds,
}

impl BudgetKind {
    /// Stable machine-readable name of the budget.
    pub fn name(self) -> &'static str {
        match self {
            BudgetKind::LineBytes => "line-bytes",
            BudgetKind::WindowBytes => "window-bytes",
            BudgetKind::QuarantineFraction => "quarantine-fraction",
            BudgetKind::MatchSeconds => "match-seconds",
        }
    }
}

/// Errors produced by the Datamaran pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The configuration contains an out-of-range or inconsistent value.
    InvalidConfig(String),
    /// The input dataset is empty (nothing to extract).
    EmptyDataset,
    /// No structure template satisfying the coverage threshold could be found.
    NoStructureFound,
    /// A structure template failed to match where a match was required
    /// (internal consistency error in the extraction pass).
    ExtractionFailure(String),
    /// An I/O error, preserving the [`io::ErrorKind`] and the path it occurred on
    /// (when known) so callers can distinguish e.g. a missing file from a full disk.
    Io {
        /// The kind of the underlying [`io::Error`].
        kind: io::ErrorKind,
        /// The file the operation was acting on, when known.
        path: Option<PathBuf>,
        /// The underlying error's message.
        message: String,
    },
    /// A record sink failed; names the sink and preserves the underlying cause.
    Sink {
        /// Identity of the failing sink (e.g. `csv:type0`, `jsonl`, `quarantine`).
        sink: String,
        /// The underlying failure.
        source: Box<Error>,
    },
    /// An input line could not be decoded under the active error policy.
    Decode {
        /// 0-based input line index of the undecodable bytes.
        line: usize,
        /// What was wrong with the bytes.
        message: String,
    },
    /// A resource budget was exceeded under the `abort` error policy.
    BudgetExceeded {
        /// Which budget was violated.
        budget: BudgetKind,
        /// The configured limit (units depend on [`BudgetKind`]).
        limit: u64,
        /// The observed value that violated it.
        observed: u64,
    },
    /// A saved template artifact could not be parsed or failed its integrity checks
    /// (unknown format tag, unsupported version, checksum mismatch, malformed template
    /// encoding).  Surfaced by [`crate::artifact`]; the CLI maps it to the same exit code
    /// as a bad configuration, since the fix is operator action, not a retry.
    Artifact(String),
    /// The durable template journal could not be written or compacted (disk full,
    /// permission, torn medium).  Surfaced by [`crate::journal`]; a journal failure
    /// **degrades** the daemon (swaps keep serving in memory, readiness flips) rather
    /// than crashing it, and the CLI maps it to the I/O exit code when it is fatal
    /// (e.g. the journal cannot be opened at startup).
    Journal(String),
}

impl Error {
    /// Builds an [`Error::Io`] from an [`io::Error`] without path context
    /// (equivalent to the [`From`] impl).
    pub fn io(e: &io::Error) -> Self {
        Error::Io {
            kind: e.kind(),
            path: None,
            message: e.to_string(),
        }
    }

    /// Builds an [`Error::Io`] carrying the path the operation was acting on.
    pub fn io_path(e: &io::Error, path: impl Into<PathBuf>) -> Self {
        Error::Io {
            kind: e.kind(),
            path: Some(path.into()),
            message: e.to_string(),
        }
    }

    /// Attaches `path` to an [`Error::Io`] that lacks one; other variants are
    /// returned unchanged.
    pub fn with_path(self, path: impl Into<PathBuf>) -> Self {
        match self {
            Error::Io {
                kind,
                path: None,
                message,
            } => Error::Io {
                kind,
                path: Some(path.into()),
                message,
            },
            other => other,
        }
    }

    /// Wraps this error with the identity of the sink it surfaced from.
    pub fn in_sink(self, sink: impl Into<String>) -> Self {
        Error::Sink {
            sink: sink.into(),
            source: Box::new(self),
        }
    }

    /// `true` for failures that a bounded retry may plausibly clear: interrupted,
    /// timed-out, or would-block I/O, directly or inside a [`Error::Sink`] wrapper.
    /// Everything else (bad configuration, decode failures, budget violations,
    /// missing files) is permanent.
    pub fn is_transient(&self) -> bool {
        match self {
            Error::Io { kind, .. } => matches!(
                kind,
                io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ),
            Error::Sink { source, .. } => source.is_transient(),
            _ => false,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::EmptyDataset => write!(f, "the dataset is empty"),
            Error::NoStructureFound => {
                write!(f, "no structure template satisfies the coverage threshold")
            }
            Error::ExtractionFailure(msg) => write!(f, "extraction failure: {msg}"),
            Error::Io {
                kind,
                path,
                message,
            } => match path {
                Some(p) => write!(f, "i/o error ({kind:?}) on {}: {message}", p.display()),
                None => write!(f, "i/o error ({kind:?}): {message}"),
            },
            Error::Sink { sink, source } => write!(f, "sink `{sink}` failed: {source}"),
            Error::Decode { line, message } => {
                write!(f, "decode error at input line {line}: {message}")
            }
            Error::BudgetExceeded {
                budget,
                limit,
                observed,
            } => write!(
                f,
                "resource budget `{}` exceeded: observed {observed}, limit {limit}",
                budget.name()
            ),
            Error::Artifact(msg) => write!(f, "template artifact error: {msg}"),
            Error::Journal(msg) => write!(f, "template journal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Sink { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::io(&e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(Error::InvalidConfig("alpha".into())
            .to_string()
            .contains("alpha"));
        assert!(Error::EmptyDataset.to_string().contains("empty"));
        assert!(Error::NoStructureFound.to_string().contains("coverage"));
        assert!(Error::ExtractionFailure("boom".into())
            .to_string()
            .contains("boom"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&Error::EmptyDataset);
    }

    #[test]
    fn io_errors_preserve_kind_and_path() {
        let raw = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e = Error::from(raw).with_path("/tmp/x.log");
        match &e {
            Error::Io { kind, path, .. } => {
                assert_eq!(*kind, io::ErrorKind::NotFound);
                assert_eq!(path.as_deref(), Some(std::path::Path::new("/tmp/x.log")));
            }
            other => panic!("expected Io, got {other:?}"),
        }
        assert!(e.to_string().contains("/tmp/x.log"));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn sink_errors_name_the_sink_and_keep_the_source() {
        let inner = Error::io(&io::Error::new(io::ErrorKind::TimedOut, "slow disk"));
        let e = inner.clone().in_sink("csv:type0");
        assert!(e.to_string().contains("csv:type0"));
        assert!(e.to_string().contains("slow disk"));
        match &e {
            Error::Sink { source, .. } => assert_eq!(**source, inner),
            other => panic!("expected Sink, got {other:?}"),
        }
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn transience_follows_io_kind_through_sink_wrappers() {
        let timeout = Error::io(&io::Error::new(io::ErrorKind::TimedOut, "t"));
        assert!(timeout.is_transient());
        assert!(timeout.in_sink("jsonl").is_transient());
        let missing = Error::io(&io::Error::new(io::ErrorKind::NotFound, "n"));
        assert!(!missing.is_transient());
        assert!(!Error::EmptyDataset.is_transient());
        assert!(!Error::BudgetExceeded {
            budget: BudgetKind::LineBytes,
            limit: 10,
            observed: 20
        }
        .is_transient());
    }

    #[test]
    fn budget_errors_report_kind_limit_and_observed() {
        let e = Error::BudgetExceeded {
            budget: BudgetKind::MatchSeconds,
            limit: 1000,
            observed: 2500,
        };
        let s = e.to_string();
        assert!(s.contains("match-seconds"), "{s}");
        assert!(s.contains("1000"), "{s}");
        assert!(s.contains("2500"), "{s}");
    }

    #[test]
    fn decode_errors_carry_the_line() {
        let e = Error::Decode {
            line: 42,
            message: "invalid utf-8".into(),
        };
        assert!(e.to_string().contains("42"));
        assert!(e.to_string().contains("invalid utf-8"));
    }
}
