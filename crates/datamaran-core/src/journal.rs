//! Durable template journal: a write-ahead log that makes drift hot swaps crash-safe.
//!
//! The serving daemon learns templates at runtime (drift-triggered rediscovery,
//! [`crate::serve`]) — state that, before this module, lived only in memory: a crash or
//! restart silently fell back to the stale on-disk [`TemplateArtifact`].  The journal
//! gives the serving tier the same durability contract the artifact gives discovery:
//!
//! * **Append:** every hot swap's template *delta* (the genuinely new templates, plus the
//!   claimed snapshot version) is framed as a checksummed, length-prefixed entry and
//!   `fsync`'d to a journal file next to the artifact **before** the swap is published.
//! * **Replay:** restart = load the artifact + replay the journal.  Replay is
//!   torn-tail tolerant: it stops at the first bad length/checksum/payload and reports the
//!   torn offset; the recovered prefix is exactly the committed swaps, never an error and
//!   never a phantom template.  Recovery truncates the torn tail so later appends land on
//!   a clean end of file.
//! * **Compaction:** after `compact_every` swaps — and on clean shutdown — the merged
//!   template set is re-saved as a fresh artifact (atomically: `.tmp` + rename +
//!   directory `fsync`, the same pattern the CSV exporter uses) and the journal is reset.
//!   A crash *between* the artifact rename and the journal reset is harmless: replay is
//!   idempotent (deltas dedup by canonical string), so the journal entries already folded
//!   into the artifact apply as no-ops.
//!
//! ## On-disk format
//!
//! ```text
//! magic:  b"DMJRNL1\n"                           (8 bytes)
//! entry:  len: u32 LE | fnv1a64(payload): u64 LE | payload   (repeated)
//! ```
//!
//! The payload is a JSON document (`{"version": N, "templates": [...]}`) using the same
//! node encoding as the artifact.  FNV-1a 64 is the artifact's checksum function, so the
//! two durability layers share one integrity primitive.
//!
//! ## Crash points
//!
//! The chaos harness (`datamaran-serve/tests/serve_crash.rs`) kills the daemon at
//! injected points: when the `DATAMARAN_CRASH_POINT` environment variable names a point,
//! the process **aborts** (no unwinding, no destructors — a faithful `kill -9`) the
//! moment execution reaches it.  `journal.torn-append` additionally writes only half the
//! entry first, producing a real torn tail on disk.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::artifact::{node_from_json, node_to_json, TemplateArtifact};
use crate::error::{Error, Result};
use crate::json::JsonValue;
use crate::serve::{PersistenceStats, SwapPersistence, TemplateSnapshot};
use crate::structure::StructureTemplate;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// The 8-byte magic every journal file starts with.
pub const JOURNAL_MAGIC: &[u8; 8] = b"DMJRNL1\n";

/// Upper bound on a single entry's payload; larger length prefixes are treated as torn
/// garbage, not allocation requests.
pub const MAX_ENTRY_BYTES: usize = 16 * 1024 * 1024;

/// Environment variable the chaos harness sets to name an injected crash point.
pub const CRASH_POINT_ENV: &str = "DATAMARAN_CRASH_POINT";

/// Whether the named crash point is armed via [`CRASH_POINT_ENV`].
pub(crate) fn crash_point_armed(name: &str) -> bool {
    std::env::var(CRASH_POINT_ENV)
        .map(|v| v == name)
        .unwrap_or(false)
}

/// Aborts the process (no unwinding — a faithful crash) if the named point is armed.
pub(crate) fn crash_point(name: &str) {
    if crash_point_armed(name) {
        eprintln!("datamaran: injected crash at point `{name}`");
        std::process::abort();
    }
}

/// `fsync` a directory so a just-renamed file inside it survives power loss.
pub(crate) fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// One journaled hot swap: the snapshot version that was claimed and the templates the
/// swap **added** (the delta, not the full set — replay folds deltas into the artifact).
#[derive(Clone, Debug, PartialEq)]
pub struct SwapDelta {
    /// The snapshot version the swap published.
    pub version: u64,
    /// The templates the swap added over its predecessor.
    pub added: Vec<StructureTemplate>,
}

impl SwapDelta {
    /// Serializes the delta payload (the bytes inside one journal frame).
    pub fn to_json(&self) -> String {
        JsonValue::Object(vec![
            ("version".into(), JsonValue::Number(self.version as f64)),
            (
                "templates".into(),
                JsonValue::Array(
                    self.added
                        .iter()
                        .map(|t| {
                            JsonValue::Object(vec![(
                                "nodes".into(),
                                JsonValue::Array(t.nodes().iter().map(node_to_json).collect()),
                            )])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_pretty()
    }

    /// Parses a delta payload written by [`to_json`](Self::to_json).
    pub fn from_json(text: &str) -> Result<Self> {
        let doc = JsonValue::parse(text)
            .map_err(|e| Error::Journal(format!("entry payload is not valid JSON: {e:?}")))?;
        let version = doc
            .require("version")
            .and_then(JsonValue::as_usize)
            .map_err(|e| Error::Journal(format!("{e:?}")))? as u64;
        let entries = doc
            .require("templates")
            .and_then(JsonValue::as_array)
            .map_err(|e| Error::Journal(format!("{e:?}")))?;
        let mut added = Vec::with_capacity(entries.len());
        for (i, entry) in entries.iter().enumerate() {
            let nodes = entry
                .require("nodes")
                .and_then(JsonValue::as_array)
                .map_err(|e| Error::Journal(format!("delta template {i}: {e:?}")))?
                .iter()
                .map(node_from_json)
                .collect::<Result<Vec<_>>>()
                .map_err(|e| Error::Journal(format!("delta template {i}: {e}")))?;
            added.push(StructureTemplate::new(nodes));
        }
        Ok(SwapDelta { version, added })
    }
}

/// Where replay stopped early: the byte offset of the first unreadable frame and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the first frame that could not be read (replay is valid up to here).
    pub offset: usize,
    /// Human-readable reason (short magic, truncated frame, checksum mismatch, ...).
    pub reason: String,
}

/// The outcome of replaying a journal byte stream.
#[derive(Clone, Debug, Default)]
pub struct JournalReplay {
    /// The committed swaps, in append order — always a prefix of what was appended.
    pub deltas: Vec<SwapDelta>,
    /// Length of the valid prefix (magic + whole entries); recovery truncates to this.
    pub valid_len: usize,
    /// Set when replay stopped before the end of the bytes.
    pub torn: Option<TornTail>,
}

/// Replays a journal byte stream.  **Never errors**: any unreadable frame — torn length
/// prefix, truncated payload, checksum mismatch, undecodable JSON — ends the replay at
/// that offset with the valid prefix intact.
pub fn replay_journal(bytes: &[u8]) -> JournalReplay {
    let mut out = JournalReplay::default();
    if bytes.is_empty() {
        return out;
    }
    if bytes.len() < JOURNAL_MAGIC.len() || &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
        out.torn = Some(TornTail {
            offset: 0,
            reason: "missing or foreign journal magic".into(),
        });
        return out;
    }
    let mut pos = JOURNAL_MAGIC.len();
    out.valid_len = pos;
    loop {
        if pos == bytes.len() {
            return out; // clean end of journal
        }
        let tear = |reason: &str| {
            Some(TornTail {
                offset: pos,
                reason: reason.into(),
            })
        };
        if bytes.len() - pos < 12 {
            out.torn = tear("truncated frame header");
            return out;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let recorded = u64::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
            bytes[pos + 8],
            bytes[pos + 9],
            bytes[pos + 10],
            bytes[pos + 11],
        ]);
        if len > MAX_ENTRY_BYTES {
            out.torn = tear("implausible entry length");
            return out;
        }
        if bytes.len() - pos - 12 < len {
            out.torn = tear("truncated entry payload");
            return out;
        }
        let payload = &bytes[pos + 12..pos + 12 + len];
        if fnv1a64_bytes(payload) != recorded {
            out.torn = tear("entry checksum mismatch");
            return out;
        }
        let text = match std::str::from_utf8(payload) {
            Ok(text) => text,
            Err(_) => {
                out.torn = tear("entry payload is not UTF-8");
                return out;
            }
        };
        match SwapDelta::from_json(text) {
            Ok(delta) => out.deltas.push(delta),
            Err(_) => {
                out.torn = tear("entry payload does not decode");
                return out;
            }
        }
        pos += 12 + len;
        out.valid_len = pos;
    }
}

/// FNV-1a 64 over a whole byte slice (the artifact's checksum primitive).
fn fnv1a64_bytes(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The storage a [`TemplateJournal`] appends to.  The filesystem implementation is
/// [`FsJournalMedia`]; the fault harness ([`crate::fault::FailingJournalDir`]) wraps it
/// with injected disk-full / torn-write failures.
pub trait JournalMedia: Send {
    /// Appends `bytes` at the end of the medium.  A failed append may leave a **torn
    /// prefix** of the bytes behind (that is what replay tolerates).
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Forces everything appended so far to durable storage.
    fn sync(&mut self) -> io::Result<()>;
    /// Truncates the medium to `len` bytes.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
    /// Current length of the medium in bytes.
    fn len(&mut self) -> io::Result<u64>;
    /// Whether the medium currently holds zero bytes.
    fn is_empty(&mut self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// A real journal file.
pub struct FsJournalMedia {
    file: File,
}

impl FsJournalMedia {
    /// Opens (or creates) the journal file at `path` for appending.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FsJournalMedia { file })
    }
}

impl JournalMedia for FsJournalMedia {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::Start(len)).map(|_| ())
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

/// An in-memory journal medium (tests): the buffer is shared, so the test keeps a handle
/// to the bytes the journal wrote.
#[derive(Clone, Default)]
pub struct MemJournalMedia {
    buf: std::sync::Arc<Mutex<Vec<u8>>>,
}

impl MemJournalMedia {
    /// A snapshot of the bytes appended so far.
    pub fn bytes(&self) -> Vec<u8> {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl JournalMedia for MemJournalMedia {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.buf
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.buf
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .truncate(len as usize);
        Ok(())
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.buf.lock().unwrap_or_else(|e| e.into_inner()).len() as u64)
    }
}

/// An append-only template WAL over a [`JournalMedia`].
pub struct TemplateJournal {
    media: Box<dyn JournalMedia>,
    entries: u64,
}

impl TemplateJournal {
    /// Starts a **fresh** journal on `media`: truncates it and writes the magic.
    pub fn fresh(mut media: Box<dyn JournalMedia>) -> Result<Self> {
        media.truncate(0).map_err(journal_io("reset"))?;
        media
            .append(JOURNAL_MAGIC)
            .and_then(|()| media.sync())
            .map_err(journal_io("write magic"))?;
        Ok(TemplateJournal { media, entries: 0 })
    }

    /// Resumes an already-recovered journal on `media` (the caller has truncated any torn
    /// tail; `entries` committed swaps are on the medium).
    pub fn resume(media: Box<dyn JournalMedia>, entries: u64) -> Self {
        TemplateJournal { media, entries }
    }

    /// Opens the journal file at `path`, replaying what is on disk: the committed swaps
    /// come back as deltas, a torn tail is **truncated** (and reported), and a journal
    /// whose magic is foreign is rotated aside to `<path>.corrupt` rather than trusted or
    /// destroyed.  Missing file = fresh journal.
    pub fn recover(path: &Path) -> Result<(Self, Vec<SwapDelta>, Option<String>)> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(Error::io_path(&e, path)),
        };
        let replay = replay_journal(&bytes);
        // A non-empty file with no readable magic is not "a torn tail" — the whole file
        // is foreign.  Preserve it for the operator and start fresh.
        if replay.valid_len == 0 && !bytes.is_empty() {
            let quarantine = path.with_extension("journal.corrupt");
            std::fs::rename(path, &quarantine).map_err(|e| Error::io_path(&e, path))?;
            let media = Box::new(FsJournalMedia::open(path).map_err(journal_io("open"))?);
            let journal = TemplateJournal::fresh(media)?;
            let reason = replay
                .torn
                .map(|t| t.reason)
                .unwrap_or_else(|| "unreadable journal".into());
            return Ok((
                journal,
                Vec::new(),
                Some(format!(
                    "journal unreadable ({reason}); rotated to {} and started fresh",
                    quarantine.display()
                )),
            ));
        }
        let mut media = Box::new(FsJournalMedia::open(path).map_err(journal_io("open"))?);
        if bytes.is_empty() {
            let journal = TemplateJournal::fresh(media)?;
            return Ok((journal, Vec::new(), None));
        }
        let mut note = None;
        if let Some(torn) = &replay.torn {
            media
                .truncate(replay.valid_len as u64)
                .and_then(|()| media.sync())
                .map_err(journal_io("truncate torn tail"))?;
            note = Some(format!(
                "torn journal tail at byte {} ({}); truncated to last durable entry",
                torn.offset, torn.reason
            ));
        }
        let entries = replay.deltas.len() as u64;
        Ok((TemplateJournal::resume(media, entries), replay.deltas, note))
    }

    /// Appends one swap delta: frame (length prefix + FNV-1a 64 checksum + payload),
    /// write, `fsync`.  The entry is durable when this returns `Ok`.
    pub fn append(&mut self, delta: &SwapDelta) -> Result<()> {
        let payload = delta.to_json();
        let payload = payload.as_bytes();
        if payload.len() > MAX_ENTRY_BYTES {
            return Err(Error::Journal(format!(
                "swap delta payload of {} bytes exceeds the {} byte frame cap",
                payload.len(),
                MAX_ENTRY_BYTES
            )));
        }
        let mut frame = Vec::with_capacity(12 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64_bytes(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        // Chaos point: a crash that tears the entry mid-write.  Half the frame lands on
        // disk, then the process dies without unwinding.
        if crash_point_armed("journal.torn-append") {
            let half = frame.len() / 2;
            let _ = self.media.append(&frame[..half]);
            let _ = self.media.sync();
            eprintln!("datamaran: injected crash at point `journal.torn-append`");
            std::process::abort();
        }
        self.media.append(&frame).map_err(journal_io("append"))?;
        self.media.sync().map_err(journal_io("sync"))?;
        self.entries += 1;
        Ok(())
    }

    /// Resets the journal to empty (post-compaction): truncate, rewrite magic, `fsync`.
    pub fn reset(&mut self) -> Result<()> {
        self.media.truncate(0).map_err(journal_io("reset"))?;
        self.media
            .append(JOURNAL_MAGIC)
            .and_then(|()| self.media.sync())
            .map_err(journal_io("rewrite magic"))?;
        self.entries = 0;
        Ok(())
    }

    /// Committed entries currently in the journal.
    pub fn entries(&self) -> u64 {
        self.entries
    }
}

/// Maps a medium-level I/O failure into the journal error taxonomy.
fn journal_io(op: &'static str) -> impl Fn(io::Error) -> Error {
    move |e| Error::Journal(format!("{op} failed: {e}"))
}

/// Builds the restart snapshot: the artifact's templates plus the journal deltas, folded
/// in append order with canonical-string dedup (replay is idempotent — deltas already
/// compacted into the artifact apply as no-ops).  The snapshot version is `1 + deltas`,
/// so versions keep advancing across restarts within one journal generation.
pub fn recovered_snapshot(
    artifact: &TemplateArtifact,
    deltas: &[SwapDelta],
) -> Result<TemplateSnapshot> {
    let mut templates = artifact.templates.clone();
    let mut known: HashSet<String> = templates
        .iter()
        .map(StructureTemplate::canonical_string)
        .collect();
    for delta in deltas {
        for template in &delta.added {
            if known.insert(template.canonical_string()) {
                templates.push(template.clone());
            }
        }
    }
    TemplateSnapshot::from_templates(
        1 + deltas.len() as u64,
        templates,
        artifact.max_line_span,
        artifact.matching_backend,
    )
}

/// How a [`JournalPersistence`] compacts.
#[derive(Clone, Copy, Debug)]
pub struct JournalConfig {
    /// Compact (atomically re-save the merged artifact and reset the journal) once this
    /// many swaps have accumulated since the last compaction.
    pub compact_every: u64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig { compact_every: 8 }
    }
}

struct JournalInner {
    journal: TemplateJournal,
    since_compact: u64,
}

/// The filesystem-backed [`SwapPersistence`]: WAL-append each swap before it publishes,
/// compact into the artifact after [`JournalConfig::compact_every`] swaps or on clean
/// shutdown.
pub struct JournalPersistence {
    artifact_path: PathBuf,
    max_line_span: usize,
    matching_backend: crate::config::MatchingBackend,
    config: JournalConfig,
    inner: Mutex<JournalInner>,
    appended: AtomicU64,
    compactions: AtomicU64,
    failures: AtomicU64,
    healthy: AtomicBool,
    last_error: Mutex<Option<String>>,
}

impl JournalPersistence {
    /// Opens (recovering if needed) the journal at `journal_path` for the artifact at
    /// `artifact_path`.  Returns the persistence layer, the replayed swap deltas (fold
    /// them into the initial snapshot with [`recovered_snapshot`]), and an optional
    /// recovery note (torn tail truncated, foreign journal rotated) for the operator log.
    pub fn open(
        artifact: &TemplateArtifact,
        artifact_path: &Path,
        journal_path: &Path,
        config: JournalConfig,
    ) -> Result<(Self, Vec<SwapDelta>, Option<String>)> {
        if config.compact_every == 0 {
            return Err(Error::InvalidConfig("compact_every must be >= 1".into()));
        }
        let (journal, deltas, note) = TemplateJournal::recover(journal_path)?;
        let since_compact = journal.entries();
        let persistence = JournalPersistence {
            artifact_path: artifact_path.to_path_buf(),
            max_line_span: artifact.max_line_span,
            matching_backend: artifact.matching_backend,
            config,
            inner: Mutex::new(JournalInner {
                journal,
                since_compact,
            }),
            appended: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            healthy: AtomicBool::new(true),
            last_error: Mutex::new(None),
        };
        Ok((persistence, deltas, note))
    }

    /// Test seam: a persistence layer whose journal lives on an arbitrary medium.
    pub fn with_media(
        artifact: &TemplateArtifact,
        artifact_path: &Path,
        media: Box<dyn JournalMedia>,
        config: JournalConfig,
    ) -> Result<Self> {
        let journal = TemplateJournal::fresh(media)?;
        Ok(JournalPersistence {
            artifact_path: artifact_path.to_path_buf(),
            max_line_span: artifact.max_line_span,
            matching_backend: artifact.matching_backend,
            config,
            inner: Mutex::new(JournalInner {
                journal,
                since_compact: 0,
            }),
            appended: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            healthy: AtomicBool::new(true),
            last_error: Mutex::new(None),
        })
    }

    /// The most recent append/compaction failure message, if any.
    pub fn last_error(&self) -> Option<String> {
        self.last_error
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn record_outcome(&self, result: &Result<()>) {
        match result {
            Ok(()) => self.healthy.store(true, Ordering::Relaxed),
            Err(e) => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                self.healthy.store(false, Ordering::Relaxed);
                *self.last_error.lock().unwrap_or_else(|e| e.into_inner()) = Some(e.to_string());
            }
        }
    }

    /// Compacts with the lock already held: atomically re-save the merged artifact, then
    /// reset the journal.  A crash after the save but before the reset only makes replay
    /// idempotently re-apply the compacted deltas.
    fn compact_locked(&self, inner: &mut JournalInner, snapshot: &TemplateSnapshot) -> Result<()> {
        let artifact = TemplateArtifact::new(
            snapshot.templates().to_vec(),
            self.max_line_span,
            self.matching_backend,
        )?;
        artifact.save(&self.artifact_path)?;
        crash_point("compact.after-save");
        inner.journal.reset()?;
        inner.since_compact = 0;
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl SwapPersistence for JournalPersistence {
    fn persist_swap(&self, old: &TemplateSnapshot, new: &TemplateSnapshot) -> Result<()> {
        let known: HashSet<String> = old
            .templates()
            .iter()
            .map(StructureTemplate::canonical_string)
            .collect();
        let added: Vec<StructureTemplate> = new
            .templates()
            .iter()
            .filter(|t| !known.contains(&t.canonical_string()))
            .cloned()
            .collect();
        if added.is_empty() {
            return Ok(());
        }
        let delta = SwapDelta {
            version: new.version(),
            added,
        };
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        crash_point("swap.before-persist");
        let result = inner.journal.append(&delta);
        if result.is_ok() {
            crash_point("swap.after-persist");
            self.appended.fetch_add(1, Ordering::Relaxed);
            inner.since_compact += 1;
            if inner.since_compact >= self.config.compact_every {
                let compacted = self.compact_locked(&mut inner, new);
                self.record_outcome(&compacted);
                return compacted;
            }
        }
        self.record_outcome(&result);
        result
    }

    fn compact(&self, current: &TemplateSnapshot) -> Result<()> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.journal.entries() == 0 {
            return Ok(());
        }
        let result = self.compact_locked(&mut inner, current);
        self.record_outcome(&result);
        result
    }

    fn stats(&self) -> PersistenceStats {
        PersistenceStats {
            appended: self.appended.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            healthy: self.healthy.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatchingBackend;
    use crate::structure::Node;

    fn template(key: &str) -> StructureTemplate {
        StructureTemplate::new(vec![
            Node::Literal(format!("{key}=")),
            Node::Field,
            Node::Literal("\n".into()),
        ])
    }

    fn artifact(keys: &[&str]) -> TemplateArtifact {
        TemplateArtifact::new(
            keys.iter().map(|k| template(k)).collect(),
            5,
            MatchingBackend::Fused,
        )
        .unwrap()
    }

    fn canon(snapshot: &TemplateSnapshot) -> Vec<String> {
        let mut v: Vec<String> = snapshot
            .templates()
            .iter()
            .map(StructureTemplate::canonical_string)
            .collect();
        v.sort();
        v
    }

    #[test]
    fn append_replay_round_trips_the_committed_swaps() {
        let media = MemJournalMedia::default();
        let mut journal = TemplateJournal::fresh(Box::new(media.clone())).unwrap();
        let deltas = vec![
            SwapDelta {
                version: 2,
                added: vec![template("a"), template("b")],
            },
            SwapDelta {
                version: 3,
                added: vec![template("c")],
            },
        ];
        for d in &deltas {
            journal.append(d).unwrap();
        }
        let replay = replay_journal(&media.bytes());
        assert_eq!(replay.deltas, deltas);
        assert!(replay.torn.is_none());
        assert_eq!(replay.valid_len, media.bytes().len());
    }

    #[test]
    fn truncation_at_any_offset_yields_a_prefix_and_never_an_error() {
        let media = MemJournalMedia::default();
        let mut journal = TemplateJournal::fresh(Box::new(media.clone())).unwrap();
        let deltas: Vec<SwapDelta> = (0..4)
            .map(|i| SwapDelta {
                version: 2 + i as u64,
                added: vec![template(&format!("k{i}"))],
            })
            .collect();
        for d in &deltas {
            journal.append(d).unwrap();
        }
        let bytes = media.bytes();
        for cut in 0..=bytes.len() {
            let replay = replay_journal(&bytes[..cut]);
            assert!(
                replay.deltas.len() <= deltas.len(),
                "phantom entries at cut {cut}"
            );
            assert_eq!(
                replay.deltas[..],
                deltas[..replay.deltas.len()],
                "not a prefix at cut {cut}"
            );
            assert!(replay.valid_len <= cut);
            if cut < bytes.len() {
                // Anything short of the full journal either ends cleanly on an entry
                // boundary (torn header of length zero is impossible: 12-byte header) or
                // reports the tear.
                assert!(
                    replay.torn.is_some() || replay.valid_len == cut,
                    "cut {cut} neither clean nor torn"
                );
            }
        }
    }

    #[test]
    fn flipped_byte_in_payload_stops_replay_at_that_entry() {
        let media = MemJournalMedia::default();
        let mut journal = TemplateJournal::fresh(Box::new(media.clone())).unwrap();
        for i in 0..3 {
            journal
                .append(&SwapDelta {
                    version: 2 + i,
                    added: vec![template(&format!("k{i}"))],
                })
                .unwrap();
        }
        let mut bytes = media.bytes();
        // Corrupt a byte inside the second entry's payload.
        let first_entry_end = {
            let replay = replay_journal(&bytes);
            assert_eq!(replay.deltas.len(), 3);
            let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
            8 + 12 + len
        };
        bytes[first_entry_end + 20] ^= 0x5a;
        let replay = replay_journal(&bytes);
        assert_eq!(replay.deltas.len(), 1, "replay must stop at the corruption");
        assert!(replay.torn.unwrap().reason.contains("checksum"));
    }

    #[test]
    fn recovered_snapshot_is_idempotent_over_compacted_deltas() {
        // The artifact already contains template "a" (compaction crash landed after the
        // artifact rename but before the journal reset) — the journaled delta re-adding
        // "a" must be a no-op while "b" still applies.
        let art = artifact(&["a"]);
        let deltas = vec![SwapDelta {
            version: 2,
            added: vec![template("a"), template("b")],
        }];
        let snapshot = recovered_snapshot(&art, &deltas).unwrap();
        assert_eq!(snapshot.templates().len(), 2);
        assert_eq!(snapshot.version(), 2);
        let again = recovered_snapshot(&art, &deltas).unwrap();
        assert_eq!(canon(&snapshot), canon(&again));
    }

    #[test]
    fn fs_recover_truncates_a_torn_tail_and_resumes_appending() {
        let dir = std::env::temp_dir().join(format!("dm-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("templates.journal");
        std::fs::remove_file(&path).ok();
        {
            let (mut journal, deltas, note) = TemplateJournal::recover(&path).unwrap();
            assert!(deltas.is_empty());
            assert!(note.is_none());
            journal
                .append(&SwapDelta {
                    version: 2,
                    added: vec![template("a")],
                })
                .unwrap();
            journal
                .append(&SwapDelta {
                    version: 3,
                    added: vec![template("b")],
                })
                .unwrap();
        }
        // Tear the tail: chop 5 bytes off the last entry.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (mut journal, deltas, note) = TemplateJournal::recover(&path).unwrap();
        assert_eq!(deltas.len(), 1, "only the intact entry survives");
        assert_eq!(
            deltas[0].added[0].canonical_string(),
            template("a").canonical_string()
        );
        assert!(note.unwrap().contains("torn"));
        // The torn bytes were truncated: a new append lands on a clean boundary.
        journal
            .append(&SwapDelta {
                version: 3,
                added: vec![template("c")],
            })
            .unwrap();
        let replay = replay_journal(&std::fs::read(&path).unwrap());
        assert_eq!(replay.deltas.len(), 2);
        assert!(replay.torn.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_journal_is_rotated_aside_not_trusted() {
        let dir = std::env::temp_dir().join(format!("dm-journal-foreign-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("templates.journal");
        std::fs::write(&path, b"this is not a journal at all").unwrap();
        let (journal, deltas, note) = TemplateJournal::recover(&path).unwrap();
        assert_eq!(journal.entries(), 0);
        assert!(deltas.is_empty());
        assert!(note.unwrap().contains("rotated"));
        assert!(path.with_extension("journal.corrupt").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistence_compacts_after_the_configured_swap_count() {
        let dir = std::env::temp_dir().join(format!("dm-journal-compact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let artifact_path = dir.join("templates.json");
        let art = artifact(&["a"]);
        art.save(&artifact_path).unwrap();
        let journal_path = dir.join("templates.journal");
        let (persistence, deltas, _) = JournalPersistence::open(
            &art,
            &artifact_path,
            &journal_path,
            JournalConfig { compact_every: 2 },
        )
        .unwrap();
        assert!(deltas.is_empty());
        let base = recovered_snapshot(&art, &[]).unwrap();
        let with_b = TemplateSnapshot::from_templates(
            2,
            vec![template("a"), template("b")],
            art.max_line_span,
            art.matching_backend,
        )
        .unwrap();
        persistence.persist_swap(&base, &with_b).unwrap();
        assert_eq!(persistence.stats().appended, 1);
        assert_eq!(persistence.stats().compactions, 0);
        let with_c = TemplateSnapshot::from_templates(
            3,
            vec![template("a"), template("b"), template("c")],
            art.max_line_span,
            art.matching_backend,
        )
        .unwrap();
        persistence.persist_swap(&with_b, &with_c).unwrap();
        // Second swap hit compact_every: the artifact now holds all three templates and
        // the journal is empty again.
        assert_eq!(persistence.stats().compactions, 1);
        let reloaded = TemplateArtifact::load(&artifact_path).unwrap();
        assert_eq!(reloaded.templates.len(), 3);
        let replay = replay_journal(&std::fs::read(&journal_path).unwrap());
        assert!(replay.deltas.is_empty());
        assert!(replay.torn.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persist_failure_degrades_health_and_recovers_on_success() {
        struct FlakyMedia {
            inner: MemJournalMedia,
            appends: usize,
            fail_at: usize,
        }
        impl JournalMedia for FlakyMedia {
            fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
                self.appends += 1;
                if self.appends == self.fail_at {
                    return Err(io::Error::other("no space left (injected)"));
                }
                self.inner.append(bytes)
            }
            fn sync(&mut self) -> io::Result<()> {
                self.inner.sync()
            }
            fn truncate(&mut self, len: u64) -> io::Result<()> {
                self.inner.truncate(len)
            }
            fn len(&mut self) -> io::Result<u64> {
                self.inner.len()
            }
        }
        let dir = std::env::temp_dir().join(format!("dm-journal-flaky-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let art = artifact(&["a"]);
        // Append 1 is the magic written by `fresh`; append 2 — the first swap — fails.
        let media = FlakyMedia {
            inner: MemJournalMedia::default(),
            appends: 0,
            fail_at: 2,
        };
        let persistence = JournalPersistence::with_media(
            &art,
            &dir.join("templates.json"),
            Box::new(media),
            JournalConfig { compact_every: 100 },
        )
        .unwrap();
        let base = recovered_snapshot(&art, &[]).unwrap();
        let next = TemplateSnapshot::from_templates(
            2,
            vec![template("a"), template("b")],
            art.max_line_span,
            art.matching_backend,
        )
        .unwrap();
        let err = persistence.persist_swap(&base, &next).unwrap_err();
        assert!(matches!(err, Error::Journal(_)), "{err:?}");
        assert!(!persistence.stats().healthy);
        assert_eq!(persistence.stats().failures, 1);
        assert!(persistence.last_error().unwrap().contains("no space"));
        // The flaky medium recovered: the next swap appends and health flips back.
        persistence.persist_swap(&base, &next).unwrap();
        assert!(persistence.stats().healthy);
        assert_eq!(persistence.stats().appended, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
