//! The serving core of a resident ingest daemon: discover once, match forever, and
//! hot-swap the template set when the stream drifts.
//!
//! Batch extraction ([`crate::streaming`]) reads a stream it owns from start to end.  A
//! *service* is push-based and long-lived: lines arrive over sockets for days, the
//! template set must be shared by many connections, and the data eventually drifts away
//! from the templates that were discovered at deploy time.  This module supplies the three
//! pieces that turn the batch engine into that service:
//!
//! * [`TemplateSnapshot`] — an immutable, compiled template set (the PR 8 fused
//!   [`SpanLineMatcher`] plus its source templates) behind an `Arc`.  Matching takes
//!   `&self`; per-session [`SpanScratch`] arenas carry all mutable state, so one snapshot
//!   serves any number of threads.
//! * [`SnapshotStore`] — the atomically swappable current snapshot.  Readers clone the
//!   `Arc` out of a read lock (held for nanoseconds — never across a match), writers
//!   install a new snapshot with [`swap`](SnapshotStore::swap).  Sessions already holding
//!   the old `Arc` finish their window on it and pick up the new one at the next window
//!   boundary: no torn reads, no blocking of the hot path.
//! * [`ServeSession`] — the per-connection processor: buffers pushed lines, decides them
//!   window by window with the same safe-limit carry-over rule as the batch loop, tracks
//!   the per-window unmatched rate ([`WindowUnmatched`]), accumulates unmatched lines in a
//!   bounded **residual buffer**, and — when the rate degrades past the configured
//!   threshold — re-runs discovery on that residual and publishes the merged template set
//!   as a new snapshot (*online inference*).
//!
//! The lifecycle hand-off in and out of this module is the [`TemplateArtifact`]: `discover
//! --save-templates` writes one, [`snapshot_from_artifact`] turns it into the initial
//! snapshot, and the serve path never runs discovery on the hot path again unless drift
//! forces it.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::artifact::TemplateArtifact;
use crate::dataset::Dataset;
use crate::error::{Error, Result};
use crate::export::{RecordSink, StreamReport};
use crate::extract::{SpanLineMatcher, SpanScratch};
use crate::json::JsonValue;
use crate::parser::FieldCell;
use crate::pipeline::Datamaran;
use crate::streaming::{StreamRecord, StreamSummary, WindowUnmatched};
use crate::structure::StructureTemplate;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Tuning of the online-inference loop.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Lines buffered per decision window: larger windows amortize matching, smaller ones
    /// give a finer-grained drift signal.
    pub window_lines: usize,
    /// Unmatched-rate threshold (fraction in `(0, 1]`): a window whose rate reaches this
    /// triggers a rediscovery attempt on the residual buffer.
    pub drift_threshold: f64,
    /// Minimum residual lines before a rediscovery attempt — discovery on a handful of
    /// lines produces junk templates.
    pub min_residual_lines: usize,
    /// Byte cap of the residual buffer; when full, the oldest residual lines are dropped.
    pub residual_bytes: usize,
    /// Whether drift triggers rediscovery at all (`false` = monitor-only: the rate is
    /// still tracked, the snapshot never changes).
    pub rediscover: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            window_lines: 256,
            drift_threshold: 0.5,
            min_residual_lines: 64,
            residual_bytes: 1024 * 1024,
            rediscover: true,
        }
    }
}

impl ServeOptions {
    /// Validates the tuning, returning [`Error::InvalidConfig`] for out-of-range values.
    pub fn validate(&self) -> Result<()> {
        if self.window_lines == 0 {
            return Err(Error::InvalidConfig("window_lines must be >= 1".into()));
        }
        if !(self.drift_threshold > 0.0 && self.drift_threshold <= 1.0) {
            return Err(Error::InvalidConfig(format!(
                "drift_threshold must be in (0, 1], got {}",
                self.drift_threshold
            )));
        }
        if self.min_residual_lines == 0 {
            return Err(Error::InvalidConfig(
                "min_residual_lines must be >= 1".into(),
            ));
        }
        if self.residual_bytes == 0 {
            return Err(Error::InvalidConfig("residual_bytes must be >= 1".into()));
        }
        Ok(())
    }

    /// Builder-style setter for the window size in lines.
    pub fn with_window_lines(mut self, lines: usize) -> Self {
        self.window_lines = lines;
        self
    }

    /// Builder-style setter for the drift threshold.
    pub fn with_drift_threshold(mut self, threshold: f64) -> Self {
        self.drift_threshold = threshold;
        self
    }

    /// Builder-style setter for the minimum residual size.
    pub fn with_min_residual_lines(mut self, lines: usize) -> Self {
        self.min_residual_lines = lines;
        self
    }

    /// Builder-style setter for the rediscovery toggle.
    pub fn with_rediscover(mut self, on: bool) -> Self {
        self.rediscover = on;
        self
    }
}

/// One immutable, compiled template set.  Matching is `&self` (all mutable state lives in
/// the caller's [`SpanScratch`]), so a snapshot behind an `Arc` serves any number of
/// sessions and threads simultaneously.
pub struct TemplateSnapshot {
    version: u64,
    templates: Vec<StructureTemplate>,
    matcher: SpanLineMatcher,
    max_line_span: usize,
}

impl TemplateSnapshot {
    /// Compiles a snapshot from templates, using the engine's extraction configuration
    /// (`max_line_span` bound, matching backend).  Empty sets are rejected.
    pub fn compile(
        version: u64,
        templates: Vec<StructureTemplate>,
        engine: &Datamaran,
    ) -> Result<Self> {
        if templates.is_empty() {
            return Err(Error::NoStructureFound);
        }
        let max_line_span = engine.config().max_line_span;
        let matcher = SpanLineMatcher::with_backend(
            &templates,
            max_line_span,
            engine.config().matching_backend,
        );
        Ok(TemplateSnapshot {
            version,
            templates,
            matcher,
            max_line_span,
        })
    }

    /// The snapshot's monotonically increasing version (1 = the initial snapshot).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The source templates, in match-priority order.
    pub fn templates(&self) -> &[StructureTemplate] {
        &self.templates
    }

    /// The compiled matcher.
    pub fn matcher(&self) -> &SpanLineMatcher {
        &self.matcher
    }

    /// The record-span bound the matcher was compiled under.
    pub fn max_line_span(&self) -> usize {
        self.max_line_span
    }

    /// Compiles a snapshot directly from templates and matcher metadata — the restart
    /// path ([`crate::journal::recovered_snapshot`]) and tests use this when no engine is
    /// in scope.  Empty sets are rejected.
    pub fn from_templates(
        version: u64,
        templates: Vec<StructureTemplate>,
        max_line_span: usize,
        backend: crate::config::MatchingBackend,
    ) -> Result<Self> {
        if templates.is_empty() {
            return Err(Error::NoStructureFound);
        }
        let matcher = SpanLineMatcher::with_backend(&templates, max_line_span, backend);
        Ok(TemplateSnapshot {
            version,
            templates,
            matcher,
            max_line_span,
        })
    }
}

/// Counters a [`SwapPersistence`] layer exposes for metrics and readiness probes.
#[derive(Clone, Copy, Debug)]
pub struct PersistenceStats {
    /// Swap deltas durably appended to the journal.
    pub appended: u64,
    /// Compactions performed (journal folded into the artifact and reset).
    pub compactions: u64,
    /// Persist or compaction attempts that failed (the daemon degrades, it does not die).
    pub failures: u64,
    /// Whether the most recent persistence operation succeeded — the readiness signal.
    pub healthy: bool,
}

/// Durability hook a [`SnapshotStore`] invokes around hot swaps.
///
/// The store calls [`persist_swap`](Self::persist_swap) **before** publishing the new
/// snapshot (write-ahead semantics: the delta is durable before any session can observe
/// the swap).  A persistence failure never blocks serving — the store records it, the
/// swap still publishes in memory, and readiness degrades until the layer recovers.
/// The filesystem implementation is [`crate::journal::JournalPersistence`].
pub trait SwapPersistence: Send + Sync {
    /// Makes the `old` → `new` template delta durable.  Called with write-ahead ordering;
    /// must be idempotent under replay (restart folds deltas with canonical-string dedup).
    fn persist_swap(&self, old: &TemplateSnapshot, new: &TemplateSnapshot) -> Result<()>;
    /// Folds everything journaled so far into the primary artifact (clean-shutdown path).
    fn compact(&self, current: &TemplateSnapshot) -> Result<()>;
    /// Point-in-time counters.
    fn stats(&self) -> PersistenceStats;
}

/// Builds the initial snapshot (version 1) from a saved [`TemplateArtifact`] — the
/// `discover --save-templates` → `serve --templates` hand-off.  The matcher is recompiled
/// with the artifact's own `max_line_span` and backend, so serving behaves byte-identically
/// to the discovering engine.
pub fn snapshot_from_artifact(artifact: &TemplateArtifact) -> TemplateSnapshot {
    TemplateSnapshot {
        version: 1,
        templates: artifact.templates.clone(),
        matcher: artifact.matcher(),
        max_line_span: artifact.max_line_span,
    }
}

/// The atomically swappable current snapshot shared by every session of a daemon.
///
/// Readers take the read lock only long enough to clone the `Arc`; the write lock is held
/// only for the pointer swap.  Neither is ever held across matching or discovery, so
/// readers never block meaningfully and a swap is a single atomic publication point.
pub struct SnapshotStore {
    inner: RwLock<Arc<TemplateSnapshot>>,
    next_version: AtomicU64,
    persistence: Option<Arc<dyn SwapPersistence>>,
    persist_failures: AtomicU64,
    last_persist_error: Mutex<Option<String>>,
}

impl SnapshotStore {
    /// Creates a store serving `initial` with no durability layer (swaps live in memory
    /// only — a restart falls back to the saved artifact).
    pub fn new(initial: TemplateSnapshot) -> Self {
        let next = initial.version + 1;
        SnapshotStore {
            inner: RwLock::new(Arc::new(initial)),
            next_version: AtomicU64::new(next),
            persistence: None,
            persist_failures: AtomicU64::new(0),
            last_persist_error: Mutex::new(None),
        }
    }

    /// Creates a store whose swaps are made durable through `persistence` **before** they
    /// publish (write-ahead: no session can observe a swap whose delta is not on disk).
    pub fn with_persistence(
        initial: TemplateSnapshot,
        persistence: Arc<dyn SwapPersistence>,
    ) -> Self {
        let mut store = SnapshotStore::new(initial);
        store.persistence = Some(persistence);
        store
    }

    /// The current snapshot (cheap: one `Arc` clone under a read lock).
    pub fn current(&self) -> Arc<TemplateSnapshot> {
        self.inner.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The current snapshot's version.
    pub fn version(&self) -> u64 {
        self.current().version
    }

    /// Claims the next snapshot version (unique across concurrent swappers).
    pub fn claim_version(&self) -> u64 {
        self.next_version.fetch_add(1, Ordering::Relaxed)
    }

    /// Atomically installs `next` as the current snapshot, returning the one it replaced.
    /// Sessions already holding the old `Arc` finish their window on it; they pick up
    /// `next` at their next window boundary.
    ///
    /// With a persistence layer attached, the swap's template delta is journaled (and
    /// `fsync`'d) **first**; only then does the snapshot publish.  A persistence failure
    /// is recorded and degrades readiness but never blocks the swap — serving correctness
    /// beats durability of a delta that replay would reconstruct from the residual anyway.
    pub fn swap(&self, next: Arc<TemplateSnapshot>) -> Arc<TemplateSnapshot> {
        if let Some(persistence) = &self.persistence {
            let old = self.current();
            if let Err(e) = persistence.persist_swap(&old, &next) {
                self.persist_failures.fetch_add(1, Ordering::Relaxed);
                *self
                    .last_persist_error
                    .lock()
                    .unwrap_or_else(|e| e.into_inner()) = Some(e.to_string());
            }
        }
        let mut slot = self.inner.write().unwrap_or_else(|e| e.into_inner());
        std::mem::replace(&mut *slot, next)
    }

    /// Folds all journaled swaps into the primary artifact (clean-shutdown compaction).
    /// A no-op without a persistence layer.
    pub fn compact(&self) -> Result<()> {
        match &self.persistence {
            Some(persistence) => {
                let current = self.current();
                let result = persistence.compact(&current);
                if let Err(e) = &result {
                    self.persist_failures.fetch_add(1, Ordering::Relaxed);
                    *self
                        .last_persist_error
                        .lock()
                        .unwrap_or_else(|e| e.into_inner()) = Some(e.to_string());
                }
                result
            }
            None => Ok(()),
        }
    }

    /// `true` when the durability layer is absent or its last operation succeeded —
    /// the `/readyz` journal-writable signal.
    pub fn persistence_healthy(&self) -> bool {
        self.persistence.as_ref().is_none_or(|p| p.stats().healthy)
    }

    /// The durability layer's counters, when one is attached.
    pub fn persistence_stats(&self) -> Option<PersistenceStats> {
        self.persistence.as_ref().map(|p| p.stats())
    }

    /// Swaps whose persist call failed (the swap still published in memory).
    pub fn persist_failures(&self) -> u64 {
        self.persist_failures.load(Ordering::Relaxed)
    }

    /// The most recent persistence failure message, if any.
    pub fn last_persist_error(&self) -> Option<String> {
        self.last_persist_error
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// A point-in-time view of a session's serving counters (everything the `/metrics`
/// endpoint and the end-of-connection report expose).
#[derive(Clone, Debug)]
pub struct ServeMetrics {
    /// The streaming counters, window histories included — the same shape as a batch
    /// [`StreamSummary`], so [`StreamReport`] serializes both.
    pub summary: StreamSummary,
    /// Version of the snapshot the session is currently matching with.
    pub snapshot_version: u64,
    /// Hot swaps this session performed (drift-triggered rediscoveries that published).
    pub swaps: u64,
    /// Rediscovery attempts that found no new structure (the residual keeps accumulating).
    pub rediscover_failures: u64,
    /// Lines currently in the residual buffer.
    pub residual_lines: usize,
    /// Bytes currently in the residual buffer.
    pub residual_bytes: usize,
    /// Residual lines dropped because the buffer was full.
    pub residual_dropped: usize,
}

impl ServeMetrics {
    /// Renders the metrics as one JSON document: a `stream` section sharing the
    /// [`StreamReport`] schema byte-for-byte with the pipeline's JSON report, plus a
    /// `serve` section with the snapshot/drift counters.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty()
    }

    /// The metrics document as a [`JsonValue`], for callers that append their own
    /// sections (the daemon adds a `journal` section when a durability layer is attached).
    pub fn to_json_value(&self) -> JsonValue {
        let report = StreamReport::new(&self.summary);
        JsonValue::Object(vec![
            ("stream".into(), report.to_json_value()),
            (
                "serve".into(),
                JsonValue::Object(vec![
                    (
                        "snapshot_version".into(),
                        JsonValue::Number(self.snapshot_version as f64),
                    ),
                    ("swaps".into(), JsonValue::Number(self.swaps as f64)),
                    (
                        "rediscover_failures".into(),
                        JsonValue::Number(self.rediscover_failures as f64),
                    ),
                    (
                        "residual_lines".into(),
                        JsonValue::Number(self.residual_lines as f64),
                    ),
                    (
                        "residual_bytes".into(),
                        JsonValue::Number(self.residual_bytes as f64),
                    ),
                    (
                        "residual_dropped".into(),
                        JsonValue::Number(self.residual_dropped as f64),
                    ),
                ]),
            ),
        ])
    }
}

/// Folds one session's finished counters into a daemon-wide aggregate (used by the
/// daemon's `/metrics` endpoint across connections).  Scalar counters add, window
/// histories concatenate, the peak takes the max, and the aggregate adopts the newer
/// template set.
pub fn merge_summaries(total: &mut StreamSummary, part: &StreamSummary) {
    total.records += part.records;
    total.noise_lines += part.noise_lines;
    total.bytes_processed += part.bytes_processed;
    total.lines_processed += part.lines_processed;
    total.windows += part.windows;
    total.peak_window_bytes = total.peak_window_bytes.max(part.peak_window_bytes);
    total.sink_seconds += part.sink_seconds;
    total.match_seconds += part.match_seconds;
    total.quarantined_lines += part.quarantined_lines;
    total.quarantined_bytes += part.quarantined_bytes;
    total.invalid_utf8_lines += part.invalid_utf8_lines;
    total.oversized_lines += part.oversized_lines;
    total
        .window_unmatched
        .extend(part.window_unmatched.iter().copied());
    total
        .window_match_stats
        .extend(part.window_match_stats.iter().copied());
    if !part.templates.is_empty() {
        total.templates = part.templates.clone();
    }
    if part.stopped_reason.is_some() {
        total.stopped_reason = part.stopped_reason;
    }
}

/// The per-connection serving processor: push lines in, records come out of the sink,
/// drift comes out as hot swaps.
///
/// The session holds its own `Arc` of the current snapshot and refreshes it from the
/// [`SnapshotStore`] at window boundaries — a swap published by any session (or an
/// external writer) propagates to every session without interrupting in-flight windows.
/// On every snapshot change the sink's [`begin`](RecordSink::begin) is re-invoked with the
/// new template set (serving sinks must tolerate re-begin; the JSON Lines sink does, the
/// CSV sink — whose column set is fixed at begin — does not and is not a serving sink).
pub struct ServeSession<'a> {
    engine: &'a Datamaran,
    store: &'a SnapshotStore,
    options: ServeOptions,
    snapshot: Arc<TemplateSnapshot>,
    scratch: SpanScratch,
    cells: Vec<FieldCell>,
    reps: Vec<u32>,
    /// Undecided window text (every line newline-terminated).
    buffer: String,
    pending_lines: usize,
    /// Unmatched lines accumulated for rediscovery (newline-terminated).
    residual: String,
    residual_lines: usize,
    residual_dropped: usize,
    summary: StreamSummary,
    global_line: usize,
    swaps: u64,
    rediscover_failures: u64,
    begun_version: Option<u64>,
}

impl<'a> ServeSession<'a> {
    /// Starts a session against `store`, using `engine` for drift-triggered rediscovery.
    pub fn new(
        engine: &'a Datamaran,
        store: &'a SnapshotStore,
        options: ServeOptions,
    ) -> Result<Self> {
        options.validate()?;
        let snapshot = store.current();
        let summary = StreamSummary {
            templates: snapshot.templates().to_vec(),
            ..StreamSummary::default()
        };
        Ok(ServeSession {
            engine,
            store,
            options,
            snapshot,
            scratch: SpanScratch::default(),
            cells: Vec::new(),
            reps: Vec::new(),
            buffer: String::new(),
            pending_lines: 0,
            residual: String::new(),
            residual_lines: 0,
            residual_dropped: 0,
            summary,
            global_line: 0,
            swaps: 0,
            rediscover_failures: 0,
            begun_version: None,
        })
    }

    /// Pushes one line (with or without its terminator) into the session, processing a
    /// window when enough lines are buffered.
    pub fn push_line<S: RecordSink + ?Sized>(&mut self, line: &str, sink: &mut S) -> Result<()> {
        self.buffer.push_str(line);
        if !line.ends_with('\n') {
            self.buffer.push('\n');
        }
        self.pending_lines += 1;
        if self.pending_lines >= self.options.window_lines {
            self.process_window(sink, false)?;
        }
        Ok(())
    }

    /// Decides everything currently buffered (end-of-input semantics for the carry-over
    /// tail).  Call between bursts or before reading [`metrics`](Self::metrics) at a
    /// quiescent point; [`finish`](Self::finish) calls it implicitly.
    pub fn flush<S: RecordSink + ?Sized>(&mut self, sink: &mut S) -> Result<()> {
        while !self.buffer.is_empty() {
            self.process_window(sink, true)?;
        }
        Ok(())
    }

    /// Flushes the session and finishes the sink, returning the final metrics.
    pub fn finish<S: RecordSink + ?Sized>(mut self, sink: &mut S) -> Result<ServeMetrics> {
        self.flush(sink)?;
        self.ensure_begun(sink)?;
        sink.finish()?;
        Ok(self.metrics())
    }

    /// A point-in-time copy of the session's counters.
    pub fn metrics(&self) -> ServeMetrics {
        ServeMetrics {
            summary: self.summary.clone(),
            snapshot_version: self.snapshot.version(),
            swaps: self.swaps,
            rediscover_failures: self.rediscover_failures,
            residual_lines: self.residual_lines,
            residual_bytes: self.residual.len(),
            residual_dropped: self.residual_dropped,
        }
    }

    /// The version of the snapshot the session is currently matching with.
    pub fn snapshot_version(&self) -> u64 {
        self.snapshot.version()
    }

    /// Adopts the store's current snapshot if it is newer, re-beginning the sink with the
    /// new template set.
    fn refresh_snapshot<S: RecordSink + ?Sized>(&mut self, sink: &mut S) -> Result<()> {
        let current = self.store.current();
        if current.version() != self.snapshot.version() {
            self.snapshot = current;
            self.summary.templates = self.snapshot.templates().to_vec();
            sink.begin(self.snapshot.templates())?;
            self.begun_version = Some(self.snapshot.version());
        }
        Ok(())
    }

    /// Invokes the sink's `begin` for the current snapshot if it has not seen it yet.
    fn ensure_begun<S: RecordSink + ?Sized>(&mut self, sink: &mut S) -> Result<()> {
        if self.begun_version != Some(self.snapshot.version()) {
            sink.begin(self.snapshot.templates())?;
            self.begun_version = Some(self.snapshot.version());
        }
        Ok(())
    }

    /// Decides one window of buffered lines: the batch loop's safe-limit rule, record
    /// emission, residual accumulation, drift tracking, and — when triggered —
    /// rediscovery and hot swap.
    fn process_window<S: RecordSink + ?Sized>(&mut self, sink: &mut S, eof: bool) -> Result<()> {
        self.refresh_snapshot(sink)?;
        self.ensure_begun(sink)?;
        let timer = std::time::Instant::now();
        let stats_before = self.scratch.stats;
        let dataset = Dataset::new(self.buffer.as_str());
        let n = dataset.line_count();
        if n == 0 {
            self.buffer.clear();
            self.pending_lines = 0;
            return Ok(());
        }
        self.summary.windows += 1;
        self.summary.peak_window_bytes = self
            .summary
            .peak_window_bytes
            .max(self.buffer.capacity() + dataset.len());
        let max_span = self.snapshot.max_line_span();
        let safe_limit = if eof { n } else { n.saturating_sub(max_span) };

        let mut line = 0usize;
        let mut window_noise = 0usize;
        while line < n {
            self.cells.clear();
            self.reps.clear();
            let matched = self.snapshot.matcher().match_line_into(
                &dataset,
                line,
                &mut self.cells,
                &mut self.reps,
                &mut self.scratch,
            );
            match matched {
                Some(rec) => {
                    if !eof && rec.line_span.1 > safe_limit {
                        break;
                    }
                    let record = StreamRecord {
                        template_index: rec.template_index as usize,
                        line_span: (
                            self.global_line + rec.line_span.0,
                            self.global_line + rec.line_span.1,
                        ),
                        window: dataset.text(),
                        cells: &self.cells,
                        reps: &self.reps,
                    };
                    sink.record(&record)?;
                    self.summary.records += 1;
                    line = rec.line_span.1;
                }
                None => {
                    if !eof && line >= safe_limit {
                        break;
                    }
                    self.summary.noise_lines += 1;
                    window_noise += 1;
                    let (s, e) = dataset.line_span(line);
                    self.push_residual(&dataset.text()[s..e]);
                    line += 1;
                }
            }
        }
        self.summary.match_seconds += timer.elapsed().as_secs_f64();

        let consumed_lines = line.min(n);
        let consumed_bytes = if line >= n {
            self.buffer.len()
        } else {
            dataset.line_start(line)
        };
        let window = WindowUnmatched {
            lines: consumed_lines,
            unmatched: window_noise,
        };
        self.summary.bytes_processed += consumed_bytes;
        self.summary.lines_processed += consumed_lines;
        self.summary.window_unmatched.push(window);
        self.summary
            .window_match_stats
            .push(self.scratch.stats.since(&stats_before));
        self.global_line += consumed_lines;
        let tail = self.buffer.split_off(consumed_bytes);
        self.buffer = tail;
        self.pending_lines = n - consumed_lines;

        // The drift trigger: this window's unmatched rate reached the threshold and the
        // residual is large enough for discovery to be meaningful.
        if self.options.rediscover
            && window.lines > 0
            && window.unmatched_rate() >= self.options.drift_threshold
            && self.residual_lines >= self.options.min_residual_lines
        {
            self.try_rediscover(sink)?;
        }
        Ok(())
    }

    /// Appends one unmatched line to the residual buffer, dropping the oldest residual
    /// lines when the byte cap would be exceeded.
    fn push_residual(&mut self, line_text: &str) {
        let cap = self.options.residual_bytes;
        if line_text.len() > cap {
            self.residual_dropped += 1;
            return;
        }
        while self.residual.len() + line_text.len() > cap && !self.residual.is_empty() {
            let first_end = self
                .residual
                .find('\n')
                .map_or(self.residual.len(), |i| i + 1);
            self.residual.drain(..first_end);
            self.residual_lines = self.residual_lines.saturating_sub(1);
            self.residual_dropped += 1;
        }
        self.residual.push_str(line_text);
        if !line_text.ends_with('\n') {
            self.residual.push('\n');
        }
        self.residual_lines += 1;
    }

    /// Runs discovery on the residual buffer; on success, publishes a new snapshot whose
    /// template set is the current set **plus** the newly discovered templates (the old
    /// format may still be interleaved with the new one), and clears the residual.  A
    /// failed attempt (no structure in the residual, or nothing genuinely new) leaves the
    /// snapshot and residual untouched and is counted.
    fn try_rediscover<S: RecordSink + ?Sized>(&mut self, sink: &mut S) -> Result<()> {
        let discovered = match self.engine.extract(&self.residual) {
            Ok(result) => result
                .templates()
                .into_iter()
                .cloned()
                .collect::<Vec<StructureTemplate>>(),
            Err(Error::NoStructureFound) | Err(Error::EmptyDataset) => {
                self.rediscover_failures += 1;
                return Ok(());
            }
            Err(other) => return Err(other),
        };
        let known: HashSet<String> = self
            .snapshot
            .templates()
            .iter()
            .map(StructureTemplate::canonical_string)
            .collect();
        let fresh: Vec<StructureTemplate> = discovered
            .into_iter()
            .filter(|t| !known.contains(&t.canonical_string()))
            .collect();
        if fresh.is_empty() {
            self.rediscover_failures += 1;
            return Ok(());
        }
        let mut merged = self.snapshot.templates().to_vec();
        merged.extend(fresh);
        let version = self.store.claim_version();
        let next = Arc::new(TemplateSnapshot::compile(version, merged, self.engine)?);
        self.store.swap(next);
        self.swaps += 1;
        self.residual.clear();
        self.residual_lines = 0;
        // Adopt the published snapshot immediately: the very next window should already
        // match the drifted lines.
        self.refresh_snapshot(sink)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::CountingSink;

    fn kv_lines(prefix: &str, n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("{prefix}=h{};cpu={}\n", i % 9, i % 100))
            .collect()
    }

    fn engine() -> Datamaran {
        Datamaran::with_defaults()
    }

    fn snapshot_for(engine: &Datamaran, text: &str) -> TemplateSnapshot {
        let result = engine.extract(text).unwrap();
        let templates: Vec<StructureTemplate> = result.templates().into_iter().cloned().collect();
        TemplateSnapshot::compile(1, templates, engine).unwrap()
    }

    #[test]
    fn session_matches_a_steady_stream_with_zero_discovery() {
        let engine = engine();
        let lines = kv_lines("host", 400);
        let text = lines.concat();
        // Batch extraction is the ground truth the serving path must reproduce.
        let batch = engine.extract(&text).unwrap();
        let batch_records: usize = batch.structures.iter().map(|s| s.records.len()).sum();
        let batch_noise = batch.noise_lines.len();
        let snapshot = snapshot_for(&engine, &text);
        let store = SnapshotStore::new(snapshot);
        let mut session = ServeSession::new(
            &engine,
            &store,
            ServeOptions::default().with_window_lines(64),
        )
        .unwrap();
        let mut sink = CountingSink::default();
        for line in &lines {
            session.push_line(line, &mut sink).unwrap();
        }
        let metrics = session.finish(&mut sink).unwrap();
        assert_eq!(metrics.summary.records, batch_records);
        assert_eq!(metrics.summary.noise_lines, batch_noise);
        assert_eq!(metrics.summary.lines_processed, 400);
        assert_eq!(metrics.swaps, 0);
        assert_eq!(metrics.snapshot_version, 1);
        assert_eq!(sink.records, batch_records);
        assert!(metrics.summary.windows > 1);
    }

    #[test]
    fn drift_triggers_rediscovery_and_recovers_the_unmatched_rate() {
        let engine = engine();
        let format_a = kv_lines("host", 300);
        let snapshot = snapshot_for(&engine, &format_a.concat());
        let store = SnapshotStore::new(snapshot);
        let options = ServeOptions::default()
            .with_window_lines(64)
            .with_drift_threshold(0.5)
            .with_min_residual_lines(64);
        let mut session = ServeSession::new(&engine, &store, options).unwrap();
        let mut sink = CountingSink::default();
        for line in &format_a {
            session.push_line(line, &mut sink).unwrap();
        }
        // Inject drift: a structurally different format the snapshot cannot match.
        let format_b: Vec<String> = (0..300)
            .map(|i| format!("{} | svc{} | {} | OK\n", 1700000000 + i, i % 5, i * 3))
            .collect();
        for line in &format_b {
            session.push_line(line, &mut sink).unwrap();
        }
        let metrics = session.finish(&mut sink).unwrap();
        assert!(metrics.swaps >= 1, "drift must publish a new snapshot");
        assert!(metrics.snapshot_version > 1);
        assert_eq!(store.version(), metrics.snapshot_version);
        // After the swap, format-B windows match again: the last window's unmatched rate
        // must have recovered below the threshold.
        let last = metrics.summary.window_unmatched.last().unwrap();
        assert!(
            last.unmatched_rate() < 0.5,
            "unmatched rate did not recover: {last:?}"
        );
        // The merged set still contains the original templates.
        let current = store.current();
        assert!(current.templates().len() > 1);
    }

    #[test]
    fn monitor_only_sessions_never_swap() {
        let engine = engine();
        let format_a = kv_lines("host", 200);
        let snapshot = snapshot_for(&engine, &format_a.concat());
        let store = SnapshotStore::new(snapshot);
        let options = ServeOptions::default()
            .with_window_lines(32)
            .with_rediscover(false);
        let mut session = ServeSession::new(&engine, &store, options).unwrap();
        let mut sink = CountingSink::default();
        for i in 0..200 {
            session
                .push_line(
                    &format!("?? noise {} frame {}\n", i * 31 % 97, i),
                    &mut sink,
                )
                .unwrap();
        }
        let metrics = session.finish(&mut sink).unwrap();
        assert_eq!(metrics.swaps, 0);
        assert_eq!(store.version(), 1);
        assert!(metrics.summary.noise_lines > 0);
        assert!(metrics.residual_lines > 0);
    }

    #[test]
    fn residual_buffer_is_bounded() {
        let engine = engine();
        let format_a = kv_lines("host", 100);
        let snapshot = snapshot_for(&engine, &format_a.concat());
        let store = SnapshotStore::new(snapshot);
        let options = ServeOptions {
            window_lines: 16,
            residual_bytes: 512,
            rediscover: false,
            ..ServeOptions::default()
        };
        let mut session = ServeSession::new(&engine, &store, options).unwrap();
        let mut sink = CountingSink::default();
        for i in 0..500 {
            session
                .push_line(&format!("!! unparseable payload {i} !!\n"), &mut sink)
                .unwrap();
        }
        let metrics = session.finish(&mut sink).unwrap();
        assert!(metrics.residual_bytes <= 512);
        assert!(metrics.residual_dropped > 0);
    }

    #[test]
    fn metrics_json_carries_stream_and_serve_sections() {
        let engine = engine();
        let lines = kv_lines("host", 120);
        let snapshot = snapshot_for(&engine, &lines.concat());
        let store = SnapshotStore::new(snapshot);
        let mut session = ServeSession::new(&engine, &store, ServeOptions::default()).unwrap();
        let mut sink = CountingSink::default();
        for line in &lines {
            session.push_line(line, &mut sink).unwrap();
        }
        let metrics = session.finish(&mut sink).unwrap();
        let json = metrics.to_json();
        let doc = JsonValue::parse(&json).unwrap();
        let stream = doc.require("stream").unwrap();
        assert_eq!(stream.require("records").unwrap().as_usize().unwrap(), 120);
        let serve = doc.require("serve").unwrap();
        assert_eq!(
            serve
                .require("snapshot_version")
                .unwrap()
                .as_usize()
                .unwrap(),
            1
        );
        assert_eq!(serve.require("swaps").unwrap().as_usize().unwrap(), 0);
    }

    #[test]
    fn swap_persists_the_delta_before_publishing() {
        use std::sync::atomic::AtomicBool;

        // A persistence layer that records, at persist time, whether the store still
        // serves the OLD snapshot — proving write-ahead ordering.
        struct ProbePersistence {
            store_version_at_persist: AtomicU64,
            fail: AtomicBool,
            persists: AtomicU64,
            compacts: AtomicU64,
        }
        struct ProbeHandle {
            inner: Arc<ProbePersistence>,
            store: Arc<RwLock<Option<Arc<SnapshotStore>>>>,
        }
        impl SwapPersistence for ProbeHandle {
            fn persist_swap(&self, _old: &TemplateSnapshot, _new: &TemplateSnapshot) -> Result<()> {
                if let Some(store) = self.store.read().unwrap().as_ref() {
                    self.inner
                        .store_version_at_persist
                        .store(store.version(), Ordering::Relaxed);
                }
                self.inner.persists.fetch_add(1, Ordering::Relaxed);
                if self.inner.fail.load(Ordering::Relaxed) {
                    return Err(Error::Journal("injected persist failure".into()));
                }
                Ok(())
            }
            fn compact(&self, _current: &TemplateSnapshot) -> Result<()> {
                self.inner.compacts.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            fn stats(&self) -> PersistenceStats {
                PersistenceStats {
                    appended: self.inner.persists.load(Ordering::Relaxed),
                    compactions: self.inner.compacts.load(Ordering::Relaxed),
                    failures: 0,
                    healthy: !self.inner.fail.load(Ordering::Relaxed),
                }
            }
        }

        let engine = engine();
        let snapshot = snapshot_for(&engine, &kv_lines("host", 100).concat());
        let probe = Arc::new(ProbePersistence {
            store_version_at_persist: AtomicU64::new(0),
            fail: AtomicBool::new(false),
            persists: AtomicU64::new(0),
            compacts: AtomicU64::new(0),
        });
        let store_slot: Arc<RwLock<Option<Arc<SnapshotStore>>>> = Arc::new(RwLock::new(None));
        let handle = ProbeHandle {
            inner: probe.clone(),
            store: store_slot.clone(),
        };
        let store = Arc::new(SnapshotStore::with_persistence(snapshot, Arc::new(handle)));
        *store_slot.write().unwrap() = Some(store.clone());

        let next = TemplateSnapshot::compile(
            store.claim_version(),
            store.current().templates().to_vec(),
            &engine,
        )
        .unwrap();
        let next_version = next.version();
        store.swap(Arc::new(next));
        // At persist time the store still served version 1 — the delta was durable
        // before the publication.
        assert_eq!(probe.store_version_at_persist.load(Ordering::Relaxed), 1);
        assert_eq!(store.version(), next_version);
        assert_eq!(store.persist_failures(), 0);
        assert!(store.persistence_healthy());

        // A failing persist degrades (recorded, readiness down) but the swap publishes.
        probe.fail.store(true, Ordering::Relaxed);
        let next = TemplateSnapshot::compile(
            store.claim_version(),
            store.current().templates().to_vec(),
            &engine,
        )
        .unwrap();
        let failed_version = next.version();
        store.swap(Arc::new(next));
        assert_eq!(store.version(), failed_version, "swap must publish anyway");
        assert_eq!(store.persist_failures(), 1);
        assert!(!store.persistence_healthy());
        assert!(store
            .last_persist_error()
            .unwrap()
            .contains("injected persist failure"));

        probe.fail.store(false, Ordering::Relaxed);
        store.compact().unwrap();
        assert_eq!(probe.compacts.load(Ordering::Relaxed), 1);
        assert_eq!(store.persistence_stats().unwrap().compactions, 1);
    }

    #[test]
    fn stores_without_persistence_are_always_healthy() {
        let engine = engine();
        let snapshot = snapshot_for(&engine, &kv_lines("host", 50).concat());
        let store = SnapshotStore::new(snapshot);
        assert!(store.persistence_healthy());
        assert!(store.persistence_stats().is_none());
        store.compact().unwrap();
        assert_eq!(store.persist_failures(), 0);
    }

    #[test]
    fn merge_summaries_adds_counters_and_concatenates_windows() {
        let mut a = StreamSummary {
            records: 10,
            noise_lines: 1,
            windows: 2,
            peak_window_bytes: 100,
            window_unmatched: vec![WindowUnmatched {
                lines: 10,
                unmatched: 1,
            }],
            ..StreamSummary::default()
        };
        let b = StreamSummary {
            records: 5,
            noise_lines: 2,
            windows: 1,
            peak_window_bytes: 300,
            window_unmatched: vec![WindowUnmatched {
                lines: 5,
                unmatched: 2,
            }],
            ..StreamSummary::default()
        };
        merge_summaries(&mut a, &b);
        assert_eq!(a.records, 15);
        assert_eq!(a.noise_lines, 3);
        assert_eq!(a.windows, 3);
        assert_eq!(a.peak_window_bytes, 300);
        assert_eq!(a.window_unmatched.len(), 2);
    }
}
