//! Reduction of record templates into *minimal* structure templates (generation step 4).
//!
//! The generation step extracts a record template from every candidate record and then folds
//! repeated patterns into array-type regular expressions, producing a structure template that
//! "cannot be reduced further".  Records that instantiate the same logical structure with
//! different repetition counts (`F,F,F\n` and `F,F,F,F,F\n`) thereby land in the same hash
//! bin.
//!
//! The reduction is deterministic (leftmost position, smallest repetition period), which is
//! what makes the hash-table grouping of the generation step meaningful.  As the paper notes
//! (Appendix 9.1), determinism does not guarantee that *every* instantiation reduces to the
//! same template, so the coverage computed during generation is an underestimate.

use crate::record::{RecordTemplate, TemplateToken};
use crate::structure::{Node, StructureTemplate};

/// Maximum repetition-unit length (in template tokens) considered while folding.
/// Multi-line units (e.g. a repeated `key: value\n` line) comfortably fit.
pub(crate) const MAX_UNIT_TOKENS: usize = 48;

/// Minimum number of adjacent unit repetitions (before the trailing copy) required to fold.
pub(crate) const MIN_REPS: usize = 2;

/// Maximum token count on which tandem-repeat folding is attempted.  Every fold restarts
/// [`find_fold`] from the left, so a window with many small repeats costs
/// `O(folds × tokens × MAX_UNIT_TOKENS²)` — quadratic in the window length when fold count
/// scales with it.  Real candidate records sit far below this cap (an `L`-line window of
/// ordinary log lines is a few hundred tokens); a pathological window (very long lines, or
/// thousands of short repeated groups) is left as a flat Struct template instead of
/// stalling the generation step.  Both generation backends share this function, so the cap
/// cannot break their differential equivalence.
pub(crate) const MAX_FOLD_TOKENS: usize = 4096;

/// Reduces a record template to its minimal structure template.
pub fn reduce(rt: &RecordTemplate) -> StructureTemplate {
    StructureTemplate::new(reduce_tokens(rt.tokens()))
}

/// Converts a token sequence with **no foldable tandem repeat** straight to its node
/// sequence (the literal-merge pass of [`reduce_tokens`] with the folding loop skipped).
/// Equals [`reduce`]'s output whenever [`tokens_have_fold_from`]`(tokens, 0)` is false *or*
/// the sequence exceeds [`MAX_FOLD_TOKENS`] (above the cap, [`reduce_tokens`] skips folding
/// too) — the generation step's window fast path relies on exactly that equality.
pub(crate) fn flat_nodes(tokens: &[TemplateToken]) -> Vec<Node> {
    let mut nodes: Vec<Node> = Vec::new();
    for t in tokens {
        match t {
            TemplateToken::Field => nodes.push(Node::Field),
            TemplateToken::Ch(c) => match nodes.last_mut() {
                Some(Node::Literal(s)) => s.push(*c),
                _ => nodes.push(Node::Literal(c.to_string())),
            },
        }
    }
    nodes
}

/// `true` when the token sequence contains a foldable tandem repeat whose start index is
/// `>= min_start` — [`find_fold`] specialized to plain tokens (no folded arrays yet) and a
/// restricted start range, for the generation step's incremental window scan.
///
/// The restriction is what makes window growth cheap: when a window known to be fold-free
/// is extended by one line (`old_len` → `n` tokens), any fold spec valid in the extended
/// window either lay entirely inside the old window (contradiction — it was fold-free) or
/// has its terminator at index `>= old_len`; in the latter case, trimming the repeat run
/// to its last [`MIN_REPS`] copies yields an equally valid spec starting at
/// `terminator - (MIN_REPS + 1) * unit_len + 1 >= old_len - (MIN_REPS + 1) * MAX_UNIT_TOKENS`.
/// Scanning only from that bound therefore decides fold-freeness of the whole window.
pub(crate) fn tokens_have_fold_from(tokens: &[TemplateToken], min_start: usize) -> bool {
    let n = tokens.len();
    for start in min_start..n {
        let max_len = MAX_UNIT_TOKENS.min((n - start) / 2);
        for unit_len in 1..=max_len {
            // O(1) prefilter, as in [`find_fold`]: without at least two adjacent copies
            // (first tokens equal) there is nothing to count.
            if tokens[start] != tokens[start + unit_len] {
                continue;
            }
            let TemplateToken::Ch(separator) = tokens[start + unit_len - 1] else {
                continue;
            };
            let mut max_reps = 1;
            while start + (max_reps + 1) * unit_len <= n
                && tokens[start + max_reps * unit_len..start + (max_reps + 1) * unit_len]
                    == tokens[start..start + unit_len]
            {
                max_reps += 1;
            }
            if max_reps < MIN_REPS {
                continue;
            }
            let mut reps = max_reps;
            while reps >= MIN_REPS {
                let tail_start = start + reps * unit_len;
                let body_len = unit_len - 1;
                let tail_fits = tail_start + body_len < n
                    && tokens[tail_start..tail_start + body_len] == tokens[start..start + body_len];
                if tail_fits {
                    if let TemplateToken::Ch(terminator) = tokens[tail_start + body_len] {
                        if terminator != separator {
                            return true;
                        }
                    }
                }
                reps -= 1;
            }
        }
    }
    false
}

/// Work item used while folding: either a still-unprocessed template token or an already
/// folded array node.
#[derive(Clone, Debug)]
enum Item {
    Tok(TemplateToken),
    Arr(Node),
}

impl Item {
    fn as_char(&self) -> Option<char> {
        match self {
            Item::Tok(TemplateToken::Ch(c)) => Some(*c),
            _ => None,
        }
    }
    fn is_plain(&self) -> bool {
        matches!(self, Item::Tok(_))
    }
    fn same_plain(&self, other: &Item) -> bool {
        match (self, other) {
            (Item::Tok(a), Item::Tok(b)) => a == b,
            _ => false,
        }
    }
}

/// Reduces a token sequence to a node sequence, folding tandem repeats into arrays.
/// Sequences longer than [`MAX_FOLD_TOKENS`] skip the folding pass (see the cap's doc).
fn reduce_tokens(tokens: &[TemplateToken]) -> Vec<Node> {
    let mut items: Vec<Item> = tokens.iter().copied().map(Item::Tok).collect();

    while items.len() <= MAX_FOLD_TOKENS {
        let Some(fold) = find_fold(&items) else { break };
        let FoldSpec {
            start,
            unit_len,
            reps,
            separator,
            terminator,
        } = fold;

        let unit_toks: Vec<TemplateToken> = items[start..start + unit_len]
            .iter()
            .map(|it| match it {
                Item::Tok(t) => *t,
                Item::Arr(_) => unreachable!("folds only span plain tokens"),
            })
            .collect();
        let body = reduce_tokens(&unit_toks[..unit_len - 1]);
        let array = Node::Array {
            body,
            separator,
            terminator,
        };
        // The folded region covers `reps` whole units, one trailing body copy, and the
        // terminator token.
        let end = start + reps * unit_len + (unit_len - 1) + 1;
        items.splice(start..end, std::iter::once(Item::Arr(array)));
    }

    // Convert the remaining items into nodes, merging adjacent literal characters.
    let mut nodes: Vec<Node> = Vec::new();
    for item in items {
        match item {
            Item::Tok(TemplateToken::Field) => nodes.push(Node::Field),
            Item::Tok(TemplateToken::Ch(c)) => match nodes.last_mut() {
                Some(Node::Literal(s)) => s.push(c),
                _ => nodes.push(Node::Literal(c.to_string())),
            },
            Item::Arr(node) => nodes.push(node),
        }
    }
    nodes
}

struct FoldSpec {
    start: usize,
    unit_len: usize,
    reps: usize,
    separator: char,
    terminator: char,
}

/// Finds the leftmost foldable tandem repeat with the smallest repetition period.
///
/// A fold at position `i` with unit length `len` requires:
/// * the unit's final token to be a formatting character `x` (the separator),
/// * at least [`MIN_REPS`] adjacent copies of the unit,
/// * the unit body (`unit` minus the separator) to appear once more right after the copies,
/// * the next token to be a formatting character `y != x` (the terminator).
fn find_fold(items: &[Item]) -> Option<FoldSpec> {
    let n = items.len();
    // `plain_run[i]`: length of the longest all-plain run starting at `i`, making the
    // unit-plainness check O(1) per `(start, unit_len)` pair instead of O(unit_len).
    let mut plain_run = vec![0usize; n + 1];
    for i in (0..n).rev() {
        plain_run[i] = if items[i].is_plain() {
            plain_run[i + 1] + 1
        } else {
            0
        };
    }
    for start in 0..n {
        // All tokens of the unit must be plain tokens (fields or characters).
        let max_len = MAX_UNIT_TOKENS.min((n - start) / 2).min(plain_run[start]);
        for unit_len in 1..=max_len {
            // A fold needs at least [`MIN_REPS`] adjacent copies, so the second copy's
            // first token must equal the unit's first — rejects almost every pair in O(1)
            // (identical outcome to letting the repetition count below stall at 1).
            if !items[start].same_plain(&items[start + unit_len]) {
                continue;
            }
            // The separator is the unit's final token and must be a plain character.
            let Some(separator) = items[start + unit_len - 1].as_char() else {
                continue;
            };
            // Count adjacent repetitions of the unit.
            let mut max_reps = 1;
            while start + (max_reps + 1) * unit_len <= n
                && (0..unit_len)
                    .all(|k| items[start + max_reps * unit_len + k].same_plain(&items[start + k]))
            {
                max_reps += 1;
            }
            if max_reps < MIN_REPS {
                continue;
            }
            // Use as many repetitions as possible while still leaving room for the trailing
            // body copy plus a distinct terminator; giving back repetitions can expose the
            // trailing copy when the repeats run to the very end of a region.
            let mut reps = max_reps;
            while reps >= MIN_REPS {
                let tail_start = start + reps * unit_len;
                let body_len = unit_len - 1;
                let tail_fits = tail_start + body_len < n
                    && (0..body_len).all(|k| items[tail_start + k].same_plain(&items[start + k]));
                if tail_fits {
                    if let Some(terminator) = items[tail_start + body_len].as_char() {
                        if terminator != separator {
                            return Some(FoldSpec {
                                start,
                                unit_len,
                                reps,
                                separator,
                                terminator,
                            });
                        }
                    }
                }
                reps -= 1;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chars::CharSet;

    fn template(text: &str, charset: &str) -> RecordTemplate {
        RecordTemplate::from_instantiated(text, &CharSet::from_chars(charset.chars()))
    }

    #[test]
    fn csv_line_reduces_to_array() {
        let rt = template("1,2,3,4,5\n", ",\n");
        let st = reduce(&rt);
        assert_eq!(st.to_string(), "(F,)*F\\n");
    }

    #[test]
    fn two_field_line_is_not_reduced() {
        let rt = template("a,b\n", ",\n");
        let st = reduce(&rt);
        assert_eq!(st.to_string(), "F,F\\n");
        assert!(!st.has_array());
    }

    #[test]
    fn three_field_line_reduces() {
        let rt = template("a,b,c\n", ",\n");
        let st = reduce(&rt);
        assert_eq!(st.to_string(), "(F,)*F\\n");
    }

    #[test]
    fn quoted_list_reduces_inside_quotes() {
        // F,"F,F,F",F\n reduces so that the quoted list becomes an array.
        let rt = template("a,\"x,y,z\",b\n", ",\"\n");
        let st = reduce(&rt);
        let s = st.to_string();
        assert!(s.contains("(F,)*F"), "expected inner array, got {s}");
    }

    #[test]
    fn multi_line_repeated_key_value_reduces_to_array() {
        let text = "k: 1\nk: 2\nk: 3\nEND\n";
        let rt = template(text, ": \n");
        let st = reduce(&rt);
        // Unit is "F: F\n" repeated, trailing body is the END field followed by '\n'.
        assert!(st.has_array(), "expected an array, got {st}");
    }

    #[test]
    fn reduction_is_idempotent_on_expansion() {
        // Reducing a larger instantiation of the same logical structure yields the same
        // minimal template as the smaller one.
        let small = reduce(&template("1,2,3\n", ",\n"));
        let large = reduce(&template("1,2,3,4,5,6,7,8\n", ",\n"));
        assert_eq!(small, large);
    }

    #[test]
    fn syslog_line_folds_space_separated_words() {
        let rt = template("Apr 24 04:02:24 srv7 snort shutdown succeeded\n", ": \n");
        let st = reduce(&rt);
        assert!(st.has_array(), "free-text suffix should fold: {st}");
    }

    #[test]
    fn no_fold_without_distinct_terminator() {
        // "a,b,c," ends with the separator: the grammar ({A}x)*{A}y cannot describe it.
        let rt = template("a,b,c,", ",");
        let st = reduce(&rt);
        assert!(!st.has_array());
    }

    #[test]
    fn nested_multi_line_records_fold_line_unit() {
        // Three repeated `F|F\n` lines followed by a structurally identical line with a
        // distinct terminator: folds into ({F|F}\n)*{F|F}#... per Assumption 3.
        let text = "a|1\nb|2\nc|3\nd|4#\n";
        let rt = template(text, "|#\n");
        let st = reduce(&rt);
        assert!(st.has_array(), "line unit should fold: {st}");
        // The array body contains the inner F|F structure.
        let rendered = st.to_string();
        assert!(rendered.contains("F|F"), "got {rendered}");
    }

    #[test]
    fn trailing_repeat_without_distinct_terminator_stays_flat() {
        // `F|F\n` repeated with nothing after it cannot be described by ({A}x)*{A}y with
        // x != y, so it must stay a flat struct.
        let text = "1|x\n2|y\n3|z\n#\n";
        let rt = template(text, "|#\n");
        let st = reduce(&rt);
        assert!(!st.has_array(), "got {st}");
    }

    #[test]
    fn pathological_long_window_skips_folding_fast() {
        // A multi-line window made of thousands of small repeated groups: every group folds
        // separately, and each fold restarts the leftmost scan — the quadratic blow-up
        // noted in the ROADMAP.  Uncapped, this window takes minutes; with the
        // `MAX_FOLD_TOKENS` cap it reduces (to a flat Struct) in microseconds, which is
        // what lets this regression test terminate at all.
        let mut text = String::new();
        for i in 0..3000 {
            text.push_str(&format!("a{i},b,c;\n"));
        }
        let rt = template(&text, ",;\n");
        assert!(
            rt.len() > super::MAX_FOLD_TOKENS,
            "window must exceed the cap"
        );
        let started = std::time::Instant::now();
        let st = reduce(&rt);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "capped reduction must be near-instant"
        );
        assert!(!st.has_array(), "above the cap the window stays flat");
        assert_eq!(st.field_count(), rt.field_count());
    }

    #[test]
    fn windows_below_the_cap_still_fold() {
        // The same shape just below the cap folds normally (the cap only affects
        // pathological windows).
        let mut text = String::new();
        for i in 0..300 {
            text.push_str(&format!("a{i},b,c;\n"));
        }
        let rt = template(&text, ",;\n");
        assert!(rt.len() <= super::MAX_FOLD_TOKENS);
        assert!(reduce(&rt).has_array());
    }

    #[test]
    fn token_fold_scan_agrees_with_item_fold_search() {
        // `tokens_have_fold_from(_, 0)` must agree with `find_fold` on plain-token input —
        // the generation fast path treats them as the same predicate.
        let cases = [
            ("1,2,3,4,5\n", ",\n"),
            ("a,b\n", ",\n"),
            ("k: 1\nk: 2\nk: 3\nEND\n", ": \n"),
            ("a|1\nb|2\nc|3\nd|4#\n", "|#\n"),
            ("1|x\n2|y\n3|z\n#\n", "|#\n"),
            ("a,b,c,", ","),
            ("Apr 24 04:02:24 srv7 snort shutdown succeeded\n", ": \n"),
            ("x=1;y=2;z=3|\n", "=;|\n"),
            ("", ",\n"),
        ];
        for (text, charset) in cases {
            let rt = template(text, charset);
            let items: Vec<Item> = rt.tokens().iter().copied().map(Item::Tok).collect();
            assert_eq!(
                tokens_have_fold_from(rt.tokens(), 0),
                find_fold(&items).is_some(),
                "disagreement on {text:?} under {charset:?}"
            );
        }
    }

    #[test]
    fn flat_nodes_equals_reduce_on_fold_free_sequences() {
        let cases = [("a,b\n", ",\n"), ("a,b,c,", ","), ("[1] x\n", "[]\n")];
        for (text, charset) in cases {
            let rt = template(text, charset);
            assert!(
                !tokens_have_fold_from(rt.tokens(), 0),
                "{text:?} must be fold-free"
            );
            assert_eq!(
                StructureTemplate::new(flat_nodes(rt.tokens())),
                reduce(&rt),
                "flat shortcut diverged on {text:?}"
            );
        }
    }

    #[test]
    fn restricted_fold_scan_decides_extended_windows() {
        // Grow a window line by line; whenever the prefix is fold-free, the restricted
        // scan from `old_len - (MIN_REPS + 1) * MAX_UNIT_TOKENS` must agree with the full
        // scan on the grown window (the incremental invariant of the generation step).
        let lines = [
            "BEGIN 7\n",
            "v=1;\n",
            "v=2;\n",
            "v=3;\n",
            "END.\n",
            "plain text here\n",
        ];
        let charset = CharSet::from_chars("=;.\n".chars());
        let mut tokens: Vec<TemplateToken> = Vec::new();
        let mut fold_free = true;
        for line in lines {
            let old_len = tokens.len();
            tokens.extend_from_slice(RecordTemplate::from_instantiated(line, &charset).tokens());
            let full = tokens_have_fold_from(&tokens, 0);
            if fold_free {
                let min_start = old_len.saturating_sub((MIN_REPS + 1) * MAX_UNIT_TOKENS);
                assert_eq!(
                    tokens_have_fold_from(&tokens, min_start),
                    full,
                    "restricted scan missed a fold after appending {line:?}"
                );
            }
            fold_free = !full;
        }
    }

    #[test]
    fn empty_template_reduces_to_empty() {
        let rt = template("", ",\n");
        let st = reduce(&rt);
        assert!(st.is_empty());
    }

    #[test]
    fn reduced_template_min_expansion_matches_small_instance() {
        // The minimal expansion of (F,)*F\n is F\n.
        let st = reduce(&template("1,2,3,4\n", ",\n"));
        assert_eq!(st.min_expansion().to_string(), "F\\n");
    }

    #[test]
    fn reduce_preserves_charset() {
        let rt = template("[1] a b c d e\n", "[] \n");
        let st = reduce(&rt);
        let cs = st.char_set();
        assert!(cs.contains('['));
        assert!(cs.contains(']'));
        assert!(cs.contains(' '));
        assert!(cs.contains('\n'));
    }
}
