//! Quickstart: extract structure from a small noisy log with multi-line records.
//!
//! Run with `cargo run --release --example quickstart`.

use datamaran::core::Datamaran;

const LOG: &str = "\
# service restarted, ignore the lines below\n\
[00:01:12] 10.0.0.1 GET /index 200\n\
[00:01:14] 10.0.0.7 GET /about 200\n\
[00:01:20] 10.0.0.1 POST /login 302\n\
!! watchdog: heap usage 81% !!\n\
[00:02:02] 10.0.0.9 GET /index 200\n\
[00:02:41] 10.0.0.7 GET /static/app.js 304\n\
[00:03:05] 10.0.0.2 DELETE /session 204\n\
-----\n\
[00:03:40] 10.0.0.1 GET /index 500\n\
[00:04:02] 10.0.0.4 GET /health 200\n\
";

fn main() {
    let result = Datamaran::with_defaults()
        .extract(LOG)
        .expect("extraction succeeds");

    println!("discovered {} record type(s)\n", result.structures.len());
    for (i, s) in result.structures.iter().enumerate() {
        println!("record type {i}");
        println!("  structure template : {}", s.template);
        println!("  records extracted  : {}", s.records.len());
        println!("  dataset coverage   : {:.1}%", s.coverage * 100.0);
        println!(
            "  column types       : {:?}",
            s.column_types.iter().map(|t| t.name()).collect::<Vec<_>>()
        );
        let table = &s.denormalized;
        println!("  first rows of the denormalized table:");
        for r in 0..table.row_count().min(3) {
            println!("    {:?}", table.row(r).collect::<Vec<_>>());
        }
        println!();
    }
    println!(
        "noise: {} line(s), {:.1}% of the bytes",
        result.noise_lines.len(),
        result.noise_fraction * 100.0
    );
    println!(
        "search statistics: {} candidate templates generated, {} kept after pruning, {} charsets enumerated",
        result.stats.candidates_generated, result.stats.candidates_pruned, result.stats.charsets_enumerated
    );
}
