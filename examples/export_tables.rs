//! Export: turn a log file into a JSON report and CSV tables that downstream tools can load.
//!
//! Run with `cargo run --release --example export_tables`.

use datamaran::core::{all_tables_csv, Datamaran, ExtractionReport};
use datamaran::logsynth::{corpus, DatasetSpec};

fn main() {
    // A synthetic "transactions + maintenance events" file: two interleaved record types plus
    // a little noise, standing in for a real data-lake log.
    let spec = DatasetSpec::new(
        "export_demo",
        vec![corpus::csv_transactions(0), corpus::pipe_events(0)],
        400,
        42,
    )
    .with_noise(0.02);
    let dataset = spec.generate();

    let result = Datamaran::with_defaults()
        .extract(&dataset.text)
        .expect("extraction succeeds");

    // 1. The JSON report: structure templates, column types, coverage, timings.
    let report = ExtractionReport::new(&dataset.text, &result);
    let json = report.to_json();
    println!("--- JSON report (first 25 lines) ---");
    for line in json.lines().take(25) {
        println!("{line}");
    }
    println!("... ({} bytes total)\n", json.len());

    // 2. CSV tables: one per normalized table of every record type.
    let tables = all_tables_csv(&result);
    println!("--- CSV tables ---");
    for (name, csv) in &tables {
        let rows = csv.lines().count() - 1;
        println!("table `{name}`: {rows} rows");
        for line in csv.lines().take(3) {
            println!("    {line}");
        }
    }

    // 3. Write them to a temporary directory, as a downstream pipeline would.
    let dir = std::env::temp_dir().join("datamaran_export_demo");
    std::fs::create_dir_all(&dir).expect("create output directory");
    for (name, csv) in &tables {
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, csv).expect("write csv");
        println!("wrote {}", path.display());
    }
    std::fs::write(dir.join("report.json"), &json).expect("write report");
    println!("wrote {}", dir.join("report.json").display());
}
