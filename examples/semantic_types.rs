//! Semantic type awareness (§6.3 "type awareness" enhancement): extract a log whose fields
//! include IP addresses, timestamps, URLs and severities, then annotate the columns and show
//! how split composites (IP octets, clock times) are recognized and re-joined.
//!
//! Run with `cargo run --release --example semantic_types`.

use datamaran::core::semtype::{annotate_table, SemanticType};
use datamaran::core::Datamaran;

fn main() {
    let mut log = String::new();
    for i in 0..200u32 {
        log.push_str(&format!(
            "{:02}:{:02}:{:02} {} 192.168.{}.{} https://svc.example.org/api/v{} {}ms\n",
            (i / 60) % 24,
            i % 60,
            (i * 7) % 60,
            ["INFO", "WARN", "ERROR"][(i % 3) as usize],
            i % 4,
            (i * 13) % 250,
            i % 3,
            (i * 11) % 900,
        ));
    }

    let result = Datamaran::with_defaults()
        .extract(&log)
        .expect("extraction succeeds");
    let structure = &result.structures[0];
    println!("template       : {}", structure.template);
    println!("records        : {}", structure.records.len());

    let annotation = annotate_table(&structure.denormalized);
    println!("\nper-column semantic types:");
    for col in &annotation.columns {
        println!(
            "  column {:>2}: {:<10} (confidence {:.0}%)",
            col.column,
            col.semantic.name(),
            col.confidence * 100.0
        );
    }

    println!("\ncomposite columns (to be re-joined for presentation):");
    for comp in &annotation.composites {
        println!(
            "  columns {}..{} joined with '{}' form one {}",
            comp.first_column,
            comp.first_column + comp.width - 1,
            comp.delimiter,
            comp.semantic.name()
        );
    }

    // Demonstrate re-joining the first composite for the first few records.
    if let Some(comp) = annotation.composites.first() {
        println!("\nfirst three re-joined values:");
        let table = &structure.denormalized;
        for r in 0..table.row_count().min(3) {
            let joined: Vec<&str> = (comp.first_column..comp.first_column + comp.width)
                .map(|c| table.cell(r, c))
                .collect();
            println!("  {}", joined.join(&comp.delimiter.to_string()));
        }
    }

    let severities = annotation
        .columns
        .iter()
        .filter(|c| c.semantic == SemanticType::Severity)
        .count();
    println!("\nseverity columns detected: {severities}");
}
