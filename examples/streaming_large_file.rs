//! Streaming extraction: process a log stream with bounded memory.  Structure is discovered
//! on a bounded head of the stream; the rest is extracted window by window and records are
//! handed to a callback as they are decided — or, for export, pushed straight into the
//! zero-copy CSV / JSON Lines sinks without ever materializing a relational table.
//!
//! Run with `cargo run --release --example streaming_large_file`.

use datamaran::core::{CsvSink, Datamaran, JsonLinesSink, StreamOptions, StreamSession, Tee};
use datamaran::logsynth::{corpus, DatasetSpec};
use std::io::Cursor;

fn main() {
    // Simulate a large multi-line log arriving as a stream (an HTTP request/response trace).
    let spec =
        DatasetSpec::new("streaming_demo", vec![corpus::http_block(0)], 30_000, 3).with_noise(0.01);
    let text = spec.generate().text;
    println!(
        "stream: {:.1} MB, {} lines (multi-line records)",
        text.len() as f64 / 1e6,
        text.lines().count()
    );

    let engine = Datamaran::with_defaults();
    let mut emitted = 0usize;
    let mut first_records = Vec::new();
    let summary = StreamSession::new(&engine)
        .options(StreamOptions {
            head_bytes: 128 * 1024,   // structure discovery buffer
            window_bytes: 256 * 1024, // bounded working set for the rest of the stream
            ..StreamOptions::default()
        })
        .run_with(Cursor::new(text), |record| {
            if emitted < 3 {
                first_records.push(record.clone());
            }
            emitted += 1;
        })
        .expect("streaming extraction succeeds");

    println!("\ndiscovered templates:");
    for (i, t) in summary.templates.iter().enumerate() {
        println!("  type{i}: {t}");
    }
    println!(
        "\nrecords emitted : {}\nnoise lines     : {}\nbytes processed : {}",
        summary.records, summary.noise_lines, summary.bytes_processed
    );

    println!("\nfirst records:");
    for r in &first_records {
        let preview: Vec<String> = r.columns.iter().map(|c| c.join(",")).take(6).collect();
        println!(
            "  lines {:>5}-{:<5} type{}  [{}]",
            r.line_span.0,
            r.line_span.1,
            r.template_index,
            preview.join(" | ")
        );
    }
    assert_eq!(emitted, summary.records);

    // Bounded-memory export: the same stream pushed straight into the CSV and JSON Lines
    // sinks — records leave the process as soon as their chunk window is decided, and the
    // emitted bytes are identical to the in-memory exporter's.
    let text = spec.generate().text;
    let mut sinks = Tee(
        CsvSink::new(|_table: &str| Ok(Vec::<u8>::new())),
        JsonLinesSink::new(Vec::<u8>::new()),
    );
    let export_summary = StreamSession::new(&engine)
        .options(StreamOptions {
            head_bytes: 128 * 1024,
            window_bytes: 256 * 1024,
            ..StreamOptions::default()
        })
        .run(Cursor::new(text), &mut sinks)
        .expect("streaming export succeeds");
    let Tee(csv, jsonl) = sinks;
    let csv_bytes: usize = csv.into_writers().iter().map(|(_, b)| b.len()).sum();
    let jsonl_bytes = jsonl.into_writer().len();
    println!(
        "\nstreaming export : {csv_bytes} CSV bytes + {jsonl_bytes} JSONL bytes \
         (peak window {} bytes over {} windows)",
        export_summary.peak_window_bytes, export_summary.windows
    );
}
