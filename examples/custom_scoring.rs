//! Pluggable regularity scores (§4: "we can plug in any reasonable scoring function into
//! Datamaran, and the algorithm would function as before").
//!
//! This example extracts the same noisy log with four different scorers and shows how the
//! chosen structure template changes (or does not), which is exactly what the ablation
//! benchmark measures corpus-wide.
//!
//! Run with `cargo run --release --example custom_scoring`.

use datamaran::core::{
    CoverageScorer, Datamaran, MdlScorer, NoisePenaltyScorer, NonFieldCoverageScorer,
    RegularityScorer, UntypedMdlScorer,
};

fn sample_log() -> String {
    let mut log = String::new();
    for i in 0..250u64 {
        log.push_str(&format!(
            "{:02}:{:02}:{:02} srv{} request id={} latency={}ms status={}\n",
            i % 24,
            (i * 3) % 60,
            (i * 7) % 60,
            i % 5,
            1000 + i,
            (i * 13) % 750,
            [200, 200, 200, 404, 500][(i % 5) as usize],
        ));
        if i % 29 == 11 {
            log.push_str("--- health check probe, no request body ---\n");
        }
    }
    log
}

fn run<S: RegularityScorer>(name: &str, scorer: &S, log: &str) {
    let result = Datamaran::with_defaults()
        .extract_with_scorer(log, scorer)
        .expect("extraction succeeds");
    let s = &result.structures[0];
    println!(
        "{name:<22} template {:<60} records {:>4}  columns {:>2}  noise {:>4.1}%",
        s.template.to_string(),
        s.records.len(),
        s.template.field_count(),
        result.noise_fraction * 100.0
    );
}

fn main() {
    let log = sample_log();
    println!(
        "dataset: {} bytes, {} lines\n",
        log.len(),
        log.lines().count()
    );

    run("MDL (default)", &MdlScorer, &log);
    run("MDL untyped", &UntypedMdlScorer, &log);
    run("coverage only", &CoverageScorer, &log);
    run("non-field coverage", &NonFieldCoverageScorer, &log);
    run(
        "MDL, noise weight 3x",
        &NoisePenaltyScorer::new(MdlScorer, 3.0),
        &log,
    );

    println!(
        "\nAll scorers run through the identical generation/pruning/evaluation pipeline; only\n\
         the evaluation-step ranking changes, so differences in the chosen template isolate\n\
         the contribution of the scoring function."
    );
}
