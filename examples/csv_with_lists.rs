//! Array handling: a CSV-like file where one column is a quoted, variable-length list.
//!
//! This exercises the structural-form assumption (Assumption 3), array folding during
//! generation, array *unfolding* during refinement (§4.3.1), and the normalized relational
//! output with a child table and foreign keys (Figure 7).
//!
//! Run with `cargo run --release --example csv_with_lists`.

use datamaran::core::Datamaran;
use logsynth::spec::seg::{field, lit, repeat};
use logsynth::{DatasetSpec, FieldKind, RecordTypeSpec};

fn main() {
    let record_type = RecordTypeSpec::new(
        "orders",
        vec![
            field(FieldKind::Integer {
                min: 1000,
                max: 9999,
            }),
            lit(","),
            field(FieldKind::Date),
            lit(",\""),
            repeat(vec![field(FieldKind::Word)], ",", 1, 5),
            lit("\","),
            field(FieldKind::Decimal {
                min: 1.0,
                max: 500.0,
                decimals: 2,
            }),
            lit("\n"),
        ],
    );
    let data = DatasetSpec::new("orders", vec![record_type], 300, 5).generate();
    println!("sample input lines:");
    for line in data.text.lines().take(3) {
        println!("  {line}");
    }

    let result = Datamaran::with_defaults().extract(&data.text).unwrap();
    let s = &result.structures[0];
    println!();
    println!("structure template: {}", s.template);
    println!("records extracted : {}", s.records.len());

    println!();
    println!("normalized output ({} tables):", s.relational.tables.len());
    for table in &s.relational.tables {
        println!(
            "  table `{}` — {} rows, columns {:?}",
            table.name,
            table.row_count(),
            table.columns
        );
        for r in 0..table.row_count().min(2) {
            println!("    {:?}", table.row(r).collect::<Vec<_>>());
        }
    }

    println!();
    println!("denormalized output (array column joined with its separator):");
    for r in 0..s.denormalized.row_count().min(3) {
        println!("  {:?}", s.denormalized.row(r).collect::<Vec<_>>());
    }
}
