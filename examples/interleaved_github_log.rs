//! Interleaved record types — the paper's Example 2 (Figure 2): two kinds of records
//! randomly interspersed in the same file, which defeats any tool that needs record
//! boundaries up front.
//!
//! Run with `cargo run --release --example interleaved_github_log`.

use datamaran::core::Datamaran;
use evalkit::{criteria, view};
use logsynth::corpus;
use logsynth::DatasetSpec;

fn main() {
    // A GitHub-style log interleaving pipe-delimited events with key-value metric lines.
    let spec = DatasetSpec::new(
        "interleaved",
        vec![
            corpus::pipe_events(0),
            corpus::kv_metrics(0).with_weight(1.4),
        ],
        500,
        7,
    )
    .with_noise(0.03);
    let data = spec.generate();
    let per_type = data.records_per_type();
    println!(
        "generated {} records ({} events, {} metric lines), {} noise lines\n",
        data.records.len(),
        per_type[0],
        per_type[1],
        data.noise_lines.len()
    );

    let result = Datamaran::with_defaults().extract(&data.text).unwrap();
    println!(
        "Datamaran discovered {} record types:",
        result.structures.len()
    );
    for (i, s) in result.structures.iter().enumerate() {
        println!(
            "  type {i}: {:5} records, coverage {:5.1}%   {}",
            s.records.len(),
            s.coverage * 100.0,
            s.template
        );
    }

    let outcome = criteria::evaluate(&data, &view::datamaran_view(&data.text, &result));
    println!();
    println!(
        "record boundaries found : {:.1}%",
        outcome.boundary_recall * 100.0
    );
    println!(
        "targets rebuildable     : {:.1}%",
        outcome.target_recall * 100.0
    );
    println!("successful per §5.1     : {}", outcome.success());

    // Show the normalized relational output of the first record type.
    let root = result.structures[0].relational.root();
    println!();
    println!(
        "normalized root table of type 0 ({} rows):",
        root.row_count()
    );
    println!("  columns: {:?}", root.columns);
    for r in 0..root.row_count().min(3) {
        println!("  {:?}", root.row(r).collect::<Vec<_>>());
    }
}
