//! Parallel extraction: once the structure is known, the final extraction pass is
//! embarrassingly parallel (§5.2.2 observes it dominates the running time for large files and
//! "is eminently parallelizable").  This example discovers the structure on a sample and then
//! compares the sequential and parallel extraction passes on a larger file.
//!
//! Run with `cargo run --release --example parallel_extraction`.

use datamaran::core::{parse_dataset_parallel, Datamaran, Dataset, ParallelOptions};
use datamaran::logsynth::{corpus, DatasetSpec};
use std::time::Instant;

fn main() {
    // ~8 MB of interleaved web-access and key-value metric records with some noise.
    let spec = DatasetSpec::new(
        "parallel_demo",
        vec![corpus::web_access(0), corpus::kv_metrics(0)],
        120_000,
        7,
    )
    .with_noise(0.01);
    let text = spec.generate().text;
    println!(
        "dataset: {:.1} MB, {} lines",
        text.len() as f64 / 1e6,
        text.lines().count()
    );

    // Structure discovery (sample-bounded, cheap).
    let engine = Datamaran::with_defaults();
    let started = Instant::now();
    let result = engine.extract(&text).expect("extraction succeeds");
    println!(
        "full sequential pipeline: {:.2}s ({} record types, {} records)",
        started.elapsed().as_secs_f64(),
        result.structures.len(),
        result.record_count()
    );

    // Re-run just the extraction pass, sequentially and in parallel, with the discovered
    // templates.
    let templates: Vec<_> = result.templates().into_iter().cloned().collect();
    let dataset = Dataset::new(text.as_str());

    let started = Instant::now();
    let sequential = datamaran::core::parse_dataset(&dataset, &templates, 10);
    let seq_time = started.elapsed().as_secs_f64();

    for threads in [2, 4, 8] {
        let started = Instant::now();
        let parallel = parse_dataset_parallel(
            &dataset,
            &templates,
            10,
            ParallelOptions::default().with_threads(threads),
        );
        let par_time = started.elapsed().as_secs_f64();
        assert_eq!(parallel.records.len(), sequential.records.len());
        assert_eq!(parallel.noise_lines, sequential.noise_lines);
        println!(
            "extraction pass: sequential {:.2}s vs {} threads {:.2}s (speedup {:.1}x, identical output)",
            seq_time,
            threads,
            par_time,
            seq_time / par_time.max(1e-9)
        );
    }
}
