//! Extracting multi-line records from a noisy server log — the scenario of the paper's
//! Figure 1/Example 1 where line-by-line tools lose the record association.
//!
//! The log is generated with `logsynth` (so we have ground truth), extracted with both
//! Datamaran and the RecordBreaker baseline, and judged with the §5.1 criterion.
//!
//! Run with `cargo run --release --example multiline_server_log`.

use datamaran::core::Datamaran;
use evalkit::{criteria, view, Extractor};
use logsynth::corpus;
use logsynth::DatasetSpec;
use recordbreaker::RecordBreaker;

fn main() {
    // Two-line HTTP request blocks with ~8% unstructured noise lines in between.
    let spec =
        DatasetSpec::new("server_blocks", vec![corpus::http_block(0)], 400, 42).with_noise(0.08);
    let data = spec.generate();
    println!(
        "generated {} bytes, {} records, {} noise lines\n",
        data.len(),
        data.records.len(),
        data.noise_lines.len()
    );

    // --- Datamaran -------------------------------------------------------------------
    let result = Datamaran::with_defaults().extract(&data.text).unwrap();
    let dm_view = view::datamaran_view(&data.text, &result);
    let dm_outcome = criteria::evaluate(&data, &dm_view);
    println!("{}:", Extractor::DatamaranExhaustive.name());
    println!("  template            : {}", result.structures[0].template);
    println!(
        "  records extracted   : {}",
        result.structures[0].records.len()
    );
    println!(
        "  boundaries found    : {:.1}%",
        dm_outcome.boundary_recall * 100.0
    );
    println!(
        "  targets rebuildable : {:.1}%",
        dm_outcome.target_recall * 100.0
    );
    println!("  successful per §5.1 : {}\n", dm_outcome.success());

    // --- RecordBreaker baseline --------------------------------------------------------
    let rb = RecordBreaker::with_defaults().extract(&data.text);
    let rb_outcome = criteria::evaluate(&data, &view::recordbreaker_view(&rb));
    println!("{}:", Extractor::RecordBreaker.name());
    println!("  output files        : {}", rb.branches.len());
    println!("  rows (one per line) : {}", rb.records.len());
    println!(
        "  boundaries found    : {:.1}%",
        rb_outcome.boundary_recall * 100.0
    );
    println!("  successful per §5.1 : {}", rb_outcome.success());
    println!();
    println!(
        "Datamaran keeps the two lines of every request together as one record; the \n\
         line-by-line baseline splits them across rows (and files), losing the association."
    );
}
