//! Differential properties for the generation engine: the span-projection backend must be
//! observationally identical to the legacy owned-string backend — same tokenization, same
//! templates, same coverage statistics — on arbitrary input, for both search strategies and
//! any worker-thread count.

use datamaran::core::generation::assert_outputs_identical;
use datamaran::core::record::field_char_len;
use datamaran::core::{
    field_values, generate, tokenize_spans, CharSet, Datamaran, DatamaranConfig, Dataset,
    GenerationBackend, LineIndex, RecordTemplate, SearchStrategy, SpanTokenKind,
};
use datamaran::logsynth::{corpus, DatasetSpec};
use proptest::prelude::*;

/// Runs both backends over `text` and asserts identical output.
fn check_backends(text: &str, strategy: SearchStrategy, threads: usize) {
    let data = Dataset::new(text);
    let base = DatamaranConfig::default()
        .with_search(strategy)
        .with_generation_threads(threads);
    let spans = generate(
        &data,
        &base
            .clone()
            .with_generation_backend(GenerationBackend::Spans),
    );
    let legacy = generate(
        &data,
        &base
            .clone()
            .with_generation_backend(GenerationBackend::Legacy),
    );
    assert_outputs_identical(&spans, &legacy, strategy.name());
}

fn separator() -> impl Strategy<Value = char> {
    prop_oneof![
        Just(','),
        Just(';'),
        Just('|'),
        Just(':'),
        Just(' '),
        Just('=')
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Class projection reproduces the direct per-line tokenizer byte-for-byte, for every
    /// subset of the superset charset, on arbitrary line soup.
    #[test]
    fn projection_matches_direct_tokenization(
        lines in prop::collection::vec("[a-zA-Z0-9,;|: =.#/-]{0,30}", 1..25),
        subset_seed in any::<u64>(),
    ) {
        let text = lines.join("\n") + "\n";
        let superset = datamaran::core::default_special_chars()
            .restrict_to_text(&text)
            .union(&CharSet::from_chars(['\n']));
        let sample = Dataset::new(text.as_str());
        let index = LineIndex::build(&sample, &superset);
        // A pseudo-random subset of the superset (always keeping '\n', as the search does).
        let mut subset = CharSet::from_chars(['\n']);
        for (bit, c) in superset.iter().enumerate() {
            if subset_seed & (1 << (bit % 64)) != 0 {
                subset.insert(c);
            }
        }
        let mut projected = Vec::new();
        for i in 0..sample.line_count() {
            projected.clear();
            index.project_line(i, &subset, &mut projected);
            let direct = RecordTemplate::from_instantiated(sample.line(i), &subset);
            prop_assert_eq!(&projected[..], direct.tokens(), "line {}", i);
            prop_assert_eq!(
                index.field_bytes(i, &subset),
                field_char_len(sample.line(i), &subset),
                "field bytes of line {}", i
            );
        }
    }

    /// The zero-copy span tokenizer tiles the text exactly and its field spans match the
    /// owned-string `field_values` API.
    #[test]
    fn span_tokens_tile_text_and_match_field_values(
        line in "[a-zA-Z0-9,;|: =.]{0,60}",
        sep in separator(),
    ) {
        let charset = CharSet::from_chars([sep, '\n']);
        let text = format!("{line}\n");
        let mut tokens = Vec::new();
        tokenize_spans(&text, &charset, &mut tokens);
        let mut cursor = 0u32;
        for t in &tokens {
            prop_assert_eq!(t.span.start, cursor, "gap before {:?}", t);
            cursor = t.span.end;
        }
        prop_assert_eq!(cursor as usize, text.len());
        let spans: Vec<(usize, usize)> = tokens
            .iter()
            .filter(|t| t.kind == SpanTokenKind::Field)
            .map(|t| (t.span.start as usize, t.span.end as usize))
            .collect();
        let values = field_values(&text, &charset);
        prop_assert_eq!(spans.len(), values.len());
        for (s, v) in spans.iter().zip(&values) {
            prop_assert_eq!(s.0, v.start);
            prop_assert_eq!(s.1, v.end);
            prop_assert_eq!(&text[s.0..s.1], v.text.as_str());
        }
    }

    /// Both backends emit identical candidates on random single-line datasets, for both
    /// search strategies.
    #[test]
    fn backends_agree_on_random_line_datasets(
        rows in prop::collection::vec(prop::collection::vec("[a-zA-Z0-9]{1,8}", 1..6), 5..40),
        sep in separator(),
        exhaustive in any::<bool>(),
    ) {
        let sep_s = sep.to_string();
        let mut text = String::new();
        for fields in &rows {
            text.push_str(&fields.join(&sep_s));
            text.push('\n');
        }
        let strategy = if exhaustive { SearchStrategy::Exhaustive } else { SearchStrategy::Greedy };
        check_backends(&text, strategy, 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Both backends emit identical candidates on generated multi-line, noisy, interleaved
    /// corpora; thread count does not change the span backend's output.
    #[test]
    fn backends_agree_on_generated_corpora(
        n_records in 20usize..80,
        seed in any::<u64>(),
        noise in 0.0f64..0.15,
        threads in 1usize..5,
    ) {
        let spec = DatasetSpec::new(
            "diff",
            vec![corpus::web_access(0), corpus::pipe_events(0)],
            n_records,
            seed,
        )
        .with_noise(noise);
        let text = spec.generate().text;
        check_backends(&text, SearchStrategy::Exhaustive, threads);
        check_backends(&text, SearchStrategy::Greedy, threads);
    }
}

/// End-to-end smoke on a large synthetic corpus: the default (span) pipeline explains the
/// file, and the two backends drive the full pipeline to the same extraction.
#[test]
fn large_synthetic_corpus_end_to_end_smoke() {
    let spec = DatasetSpec::new("smoke", vec![corpus::web_access(0)], 6000, 99).with_noise(0.01);
    let data = spec.generate();
    assert!(
        data.text.len() > 250_000,
        "corpus too small: {}",
        data.text.len()
    );

    let spans_result = Datamaran::with_defaults().extract(&data.text).unwrap();
    assert!(
        spans_result.record_count() >= 6000,
        "extracted {} of 6000",
        spans_result.record_count()
    );
    assert!(
        spans_result.noise_fraction < 0.10,
        "noise {}",
        spans_result.noise_fraction
    );

    let legacy_engine = Datamaran::new(
        DatamaranConfig::default().with_generation_backend(GenerationBackend::Legacy),
    )
    .unwrap();
    let legacy_result = legacy_engine.extract(&data.text).unwrap();
    assert_eq!(spans_result.record_count(), legacy_result.record_count());
    assert_eq!(spans_result.noise_lines, legacy_result.noise_lines);
    let spans_templates: Vec<String> = spans_result
        .templates()
        .iter()
        .map(|t| t.to_string())
        .collect();
    let legacy_templates: Vec<String> = legacy_result
        .templates()
        .iter()
        .map(|t| t.to_string())
        .collect();
    assert_eq!(spans_templates, legacy_templates);
}
