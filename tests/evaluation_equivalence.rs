//! Differential properties for the evaluation engine: the compiled span backend (arena
//! parses, arena-native scoring, template-score memo) must be observationally identical to
//! the legacy tree re-parse — identical ranked `(template, score)` lists out of the
//! pipeline, bit-identical scores, byte-identical normalized and denormalized relational
//! tables — plus the refinement-internal properties of the ISSUE: span-vs-legacy
//! equivalence of `repetition_counts` on nested-array templates, and eligibility
//! preservation of `unfold_at`/`shift_variants` candidates.

use datamaran::core::{
    generate, parse_dataset, parse_dataset_span, reduce, repetition_counts, repetition_counts_span,
    shift_variants, unfold_at, CharSet, CoverageScorer, Datamaran, DatamaranConfig, Dataset,
    EvaluationBackend, MdlScorer, NoisePenaltyScorer, NonFieldCoverageScorer, RecordTemplate,
    Refiner, RegularityScorer, StructureTemplate, UntypedMdlScorer,
};
use datamaran::logsynth::{corpus, DatasetSpec};
use proptest::prelude::*;

fn flat(example: &str, charset: &str) -> StructureTemplate {
    let cs = CharSet::from_chars(charset.chars());
    StructureTemplate::from_record_template(&RecordTemplate::from_instantiated(example, &cs))
}

fn folded(example: &str, charset: &str) -> StructureTemplate {
    let cs = CharSet::from_chars(charset.chars());
    reduce(&RecordTemplate::from_instantiated(example, &cs))
}

/// Runs the full pipeline on all three evaluation backends — `span` (delta evaluation,
/// the default), `span-full` (span engine, full re-parse per variant), and `legacy` — and
/// asserts identical discovered structures: same templates in the same order,
/// bit-identical scores, byte-identical relational output (the `EvaluationBackend`
/// acceptance criterion).
fn check_pipeline(text: &str, label: &str) {
    let span = Datamaran::with_defaults().extract(text).unwrap();
    for backend in [EvaluationBackend::SpanFull, EvaluationBackend::Legacy] {
        let other = Datamaran::new(DatamaranConfig::default().with_evaluation_backend(backend))
            .unwrap()
            .extract(text)
            .unwrap();
        let name = backend.name();
        assert_eq!(
            span.structures.len(),
            other.structures.len(),
            "{label} vs {name}: structure count"
        );
        for (a, b) in span.structures.iter().zip(&other.structures) {
            assert_eq!(a.template, b.template, "{label} vs {name}: ranked template");
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "{label} vs {name}: score of {}",
                a.template
            );
            assert_eq!(
                a.relational, b.relational,
                "{label} vs {name}: normalized tables"
            );
            assert_eq!(
                a.denormalized, b.denormalized,
                "{label} vs {name}: denormalized table"
            );
            assert_eq!(
                a.column_types, b.column_types,
                "{label} vs {name}: column types"
            );
        }
        assert_eq!(
            span.noise_lines, other.noise_lines,
            "{label} vs {name}: noise lines"
        );
    }
}

#[test]
#[ignore = "heavy integration suite: run with `cargo test -- --ignored` (dedicated CI step)"]
fn pipeline_backends_agree_on_generated_corpora() {
    let families = [
        ("weblog", vec![corpus::web_access(0)], 0.02),
        ("http_blocks", vec![corpus::http_block(0)], 0.01),
        (
            "interleaved",
            vec![corpus::web_access(0), corpus::pipe_events(0)],
            0.03,
        ),
        ("kv", vec![corpus::kv_metrics(0)], 0.0),
    ];
    for (i, (name, types, noise)) in families.into_iter().enumerate() {
        let spec = DatasetSpec::new(name, types, 220, 4100 + i as u64).with_noise(noise);
        check_pipeline(&spec.generate().text, name);
    }
}

#[test]
fn refiner_backends_agree_on_candidate_pools() {
    // The generation step's own candidates on a structured sample: refine every one with
    // both backends and require identical (template, score, summary) triples in order.
    let mut text = String::new();
    for i in 0..150u64 {
        text.push_str(&format!("{},{},{}\n", i, i * 7 % 113, i % 9));
        if i % 13 == 6 {
            text.push_str(&format!("note {} free text here\n", i));
        }
    }
    let data = Dataset::new(text.as_str());
    let config = DatamaranConfig::default();
    let templates: Vec<StructureTemplate> = generate(&data, &config)
        .candidates
        .into_iter()
        .take(12)
        .map(|c| c.template)
        .collect();
    assert!(!templates.is_empty());
    let scorer = MdlScorer;
    let span = Refiner::with_backend(&data, &scorer, 10, EvaluationBackend::Span);
    let span_full = Refiner::with_backend(&data, &scorer, 10, EvaluationBackend::SpanFull);
    let legacy = Refiner::with_backend(&data, &scorer, 10, EvaluationBackend::Legacy);
    let a = span.refine_batch(templates.clone(), true, 1);
    let f = span_full.refine_batch(templates.clone(), true, 1);
    let b = legacy.refine_batch(templates, true, 1);
    assert_eq!(a.len(), b.len());
    assert_eq!(f.len(), b.len());
    for ((x, y), z) in a.iter().zip(&b).zip(&f) {
        assert_eq!(x.template, y.template);
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "template {}",
            x.template
        );
        assert_eq!(x.summary, y.summary, "template {}", x.template);
        assert_eq!(z.template, y.template, "span-full template {}", y.template);
        assert_eq!(
            z.score.to_bits(),
            y.score.to_bits(),
            "span-full score of {}",
            y.template
        );
        assert_eq!(z.summary, y.summary, "span-full summary of {}", y.template);
    }
    // The delta engine must actually have engaged on this pool (arrays => unfolds).
    let metrics = span.metrics();
    assert!(metrics.delta_parses > 0, "{metrics:?}");
    assert_eq!(span_full.metrics().delta_parses, 0);
}

#[test]
fn all_shipped_scorers_have_exact_span_paths() {
    let mut text = String::new();
    for i in 0..80 {
        text.push_str(&format!(
            "[{:02}] {} {}.5 txt-{}\n",
            i % 60,
            ["GET", "PUT"][i % 2],
            i,
            i % 7
        ));
        if i % 11 == 3 {
            text.push_str("-- noise --\n");
        }
    }
    let data = Dataset::new(text.as_str());
    let templates = [
        flat("[01] GET 3.5 x\n", "[] \n"),
        folded("a b c d\n", " \n"),
        folded("1,2,3\n", ",\n"),
    ];
    fn check<S: RegularityScorer>(scorer: &S, data: &Dataset, t: &StructureTemplate) {
        let legacy = parse_dataset(data, std::slice::from_ref(t), 10);
        let span = parse_dataset_span(data, std::slice::from_ref(t), 10);
        let tree = scorer.score(data, t, &legacy);
        let arena = scorer
            .score_span(data, t, &span)
            .expect("shipped scorers are span-native");
        assert_eq!(
            arena.to_bits(),
            tree.to_bits(),
            "{}: {arena} vs {tree} on {t}",
            scorer.name()
        );
    }
    for t in &templates {
        check(&MdlScorer, &data, t);
        check(&CoverageScorer, &data, t);
        check(&UntypedMdlScorer, &data, t);
        check(&NonFieldCoverageScorer, &data, t);
        check(&NoisePenaltyScorer::new(MdlScorer, 2.5), &data, t);
    }
}

#[test]
fn custom_scorer_without_span_path_falls_back_to_materialization() {
    /// A scorer that only implements the tree path (simulates downstream custom scorers).
    struct TreeOnly;
    impl RegularityScorer for TreeOnly {
        fn score(
            &self,
            dataset: &Dataset,
            _template: &StructureTemplate,
            parse: &datamaran::core::ParseResult,
        ) -> f64 {
            (dataset.len() - parse.record_bytes.min(dataset.len())) as f64
                + parse.records.len() as f64
        }
    }
    let mut text = String::new();
    for i in 0..60 {
        text.push_str(&format!("{},{}\n", i, i * 2));
    }
    let data = Dataset::new(text.as_str());
    let t = folded("1,2\n", ",\n");
    let span = Refiner::with_backend(&data, &TreeOnly, 10, EvaluationBackend::Span);
    let legacy = Refiner::with_backend(&data, &TreeOnly, 10, EvaluationBackend::Legacy);
    let a = span.refine(&t);
    let b = legacy.refine(&t);
    assert_eq!(a.template, b.template);
    assert_eq!(a.score.to_bits(), b.score.to_bits());
    assert_eq!(a.summary, b.summary);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `repetition_counts` from the span arenas equals the tree walker's on random row
    /// datasets with (possibly nested) array templates — including multi-line windows
    /// whose reduction nests arrays.
    #[test]
    fn repetition_counts_agree_on_random_datasets(
        rows in prop::collection::vec(prop::collection::vec("[a-z0-9]{1,6}", 1..7), 4..25),
        sep in prop_oneof![Just(','), Just(';'), Just('|')],
        nested in any::<bool>(),
    ) {
        let sep_s = sep.to_string();
        let mut text = String::new();
        for fields in &rows {
            text.push_str(&fields.join(&sep_s));
            text.push('\n');
        }
        let template = if nested {
            // A two-line window template: reduction folds the repeated line pattern into a
            // nested array when the shapes repeat.
            let block = format!("a{sep}1\na{sep}2\n");
            folded(&block, &format!("{sep}\n"))
        } else {
            folded(&format!("1{sep}2{sep}3\n"), &format!("{sep}\n"))
        };
        let data = Dataset::new(text.as_str());
        let templates = std::slice::from_ref(&template);
        let legacy = repetition_counts(&parse_dataset(&data, templates, 10));
        let span = repetition_counts_span(&parse_dataset_span(&data, templates, 10), &template);
        prop_assert_eq!(legacy, span);
    }

    /// Refinement candidates preserve coverage-threshold eligibility: on CSV-like corpora
    /// with a dominant modal width, every `unfold_at` candidate parses to coverage at most
    /// the parent's, and the accepted refinement (`Refiner::refine`) still reaches the
    /// alpha threshold whenever the parent did.
    #[test]
    fn unfold_candidates_preserve_coverage_eligibility(
        cols in 2usize..6,
        rows in 20usize..60,
        ragged in prop::collection::vec(any::<bool>(), 8..9),
    ) {
        let mut text = String::new();
        for i in 0..rows {
            // A dominant modal width plus a ragged minority keeps the array template
            // interesting without breaking Assumption 1.
            let width = if ragged.get(i % 8).copied().unwrap_or(false) && i % 5 == 0 {
                cols + 1
            } else {
                cols
            };
            let vals: Vec<String> = (0..width).map(|c| format!("{}", i * 10 + c)).collect();
            text.push_str(&vals.join(","));
            text.push('\n');
        }
        let data = Dataset::new(text.as_str());
        let alpha = 0.10;
        let parent = folded("1,2,3\n", ",\n");
        let scorer = MdlScorer;
        let refiner = Refiner::new(&data, &scorer, 10);
        let parent_eval = refiner.evaluate(&parent);
        let parent_cov = parent_eval.summary.record_coverage(data.len());
        prop_assert!(parent_cov >= alpha, "parent covers the whole file");

        // Every unfold candidate explains a subset of what the folded parent explains.
        let paths = datamaran::core::collect_array_paths(parent.nodes());
        for path in &paths {
            for reps in 1..=cols + 1 {
                for partial in [false, true] {
                    if let Some(candidate) = unfold_at(&parent, path, reps, partial) {
                        let cand_eval = refiner.evaluate(&candidate);
                        prop_assert!(
                            cand_eval.summary.record_coverage(data.len()) <= parent_cov + 1e-9,
                            "unfold of {parent} to {candidate} gained coverage"
                        );
                    }
                }
            }
        }

        // The accepted refinement keeps the parent's eligibility.
        let refined = refiner.refine(&parent);
        prop_assert!(
            refined.summary.record_coverage(data.len()) >= alpha,
            "refine({parent}) -> {} lost eligibility",
            refined.template
        );
    }

    /// Shift variants of a multi-line template explain the same records modulo rotation:
    /// each variant's record count is within one of the parent's, so the `RefineST` shift
    /// rule's eligibility bound (half the parent's records) always holds for the variant
    /// the refiner keeps.
    #[test]
    fn shift_variants_preserve_record_mass(
        n in 10usize..40,
        offset in 0usize..2,
    ) {
        let mut text = String::new();
        for i in 0..n {
            text.push_str(&format!("HDR {i}\nval={};st=ok\n", i + offset));
        }
        let data = Dataset::new(text.as_str());
        let parent = flat("HDR 1\nval=2;st=ok\n", " =;\n");
        let scorer = MdlScorer;
        let refiner = Refiner::new(&data, &scorer, 10);
        let parent_eval = refiner.evaluate(&parent);
        for v in shift_variants(&parent) {
            let var_eval = refiner.evaluate(&v);
            prop_assert!(
                var_eval.summary.record_count + 1 >= parent_eval.summary.record_count,
                "variant {v} lost more than one record vs {} ({} vs {})",
                parent,
                var_eval.summary.record_count,
                parent_eval.summary.record_count
            );
        }
        let refined = refiner.refine(&parent);
        prop_assert!(
            refined.summary.record_count * 2 >= parent_eval.summary.record_count.max(1),
            "refine kept an ineligible shift"
        );
    }
}
