//! Property-based tests over the durable template journal (ISSUE 10): a write-ahead log
//! torn at **any** byte offset — by a crash or by the disk filling mid-append — must
//! replay to an exact prefix of the committed swaps.  Never an error, never a phantom
//! delta, never a reordering.

use datamaran::core::{
    recovered_snapshot, reduce, replay_journal, CharSet, FailingJournalDir, MemJournalMedia,
    RecordTemplate, StructureTemplate, SwapDelta, TemplateArtifact, TemplateJournal, JOURNAL_MAGIC,
};
use proptest::prelude::*;

const SEPS: [char; 4] = [',', ';', '|', ':'];

/// A real reduced template whose canonical string varies with the template code —
/// `code % 4` picks the separator, `code / 4` the field count — enough distinct shapes
/// to make every journaled delta observable after replay.
fn template(code: usize) -> StructureTemplate {
    let sep = SEPS[code % SEPS.len()];
    let fields = (code / SEPS.len()) % 5 + 1;
    let line = format!("{}\n", vec!["x7"; fields].join(&sep.to_string()));
    let charset = CharSet::from_chars([sep, '\n']);
    reduce(&RecordTemplate::from_instantiated(&line, &charset))
}

/// Builds the committed swap sequence from generated template codes.  Versions start at
/// 2: version 1 is the artifact the journal rides next to.
fn build_deltas(specs: &[Vec<usize>]) -> Vec<SwapDelta> {
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| SwapDelta {
            version: (i + 2) as u64,
            added: spec.iter().map(|&code| template(code)).collect(),
        })
        .collect()
}

/// Generated swap sequences: 1..=4 swaps, each adding 1..=2 templates.
fn delta_specs() -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0usize..20, 1..3), 1..5)
}

/// Appends every delta to a fresh in-memory journal and returns the full byte stream.
fn journal_bytes(deltas: &[SwapDelta]) -> Vec<u8> {
    let media = MemJournalMedia::default();
    let mut journal = TemplateJournal::fresh(Box::new(media.clone())).unwrap();
    for delta in deltas {
        journal.append(delta).unwrap();
    }
    media.bytes()
}

fn assert_prefix(replayed: &[SwapDelta], committed: &[SwapDelta], context: &str) {
    assert!(
        replayed.len() <= committed.len(),
        "{context}: replay produced {} deltas from {} committed (phantom entries)",
        replayed.len(),
        committed.len()
    );
    for (got, want) in replayed.iter().zip(committed) {
        assert_eq!(got, want, "{context}: replay reordered or altered a delta");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Truncating the WAL at **every** byte offset replays to an exact prefix of the
    /// committed swaps — the crash-consistency contract, exhaustively per stream.
    #[test]
    fn truncation_at_every_offset_replays_a_prefix(specs in delta_specs()) {
        let committed = build_deltas(&specs);
        let bytes = journal_bytes(&committed);
        let full = replay_journal(&bytes);
        prop_assert!(full.torn.is_none());
        prop_assert_eq!(full.deltas.len(), committed.len());
        for cut in 0..=bytes.len() {
            let replay = replay_journal(&bytes[..cut]);
            assert_prefix(&replay.deltas, &committed, &format!("cut at byte {cut}"));
            // The valid prefix never extends past the truncation point, and recovery
            // truncating to it must be idempotent.
            assert!(replay.valid_len <= cut, "cut at byte {cut}: valid_len overruns");
            let again = replay_journal(&bytes[..replay.valid_len]);
            assert_eq!(again.deltas.len(), replay.deltas.len());
            assert!(again.torn.is_none(), "cut at byte {cut}: truncated journal still torn");
            // Anything short of the full stream is detected as torn (except exactly at
            // an entry boundary, where the journal is simply shorter).
            if cut < bytes.len() && replay.valid_len < cut {
                assert!(replay.torn.is_some(), "cut at byte {cut}: torn tail not flagged");
            }
        }
    }

    /// The disk filling up mid-append (a torn frame at an arbitrary byte) loses only the
    /// append in flight: every append that returned `Ok` survives replay verbatim.
    #[test]
    fn disk_full_mid_append_keeps_every_acknowledged_swap(
        specs in delta_specs(),
        budget in 0u64..2048,
    ) {
        let committed = build_deltas(&specs);
        let dir = FailingJournalDir::with_budget(budget);
        let media = dir.open();
        let handle = media.handle();
        let mut acknowledged: Vec<SwapDelta> = Vec::new();
        match TemplateJournal::fresh(Box::new(media)) {
            Err(_) => {
                // The magic itself did not fit: nothing was ever acknowledged.
                prop_assert!(budget < JOURNAL_MAGIC.len() as u64);
            }
            Ok(mut journal) => {
                for delta in &committed {
                    match journal.append(delta) {
                        Ok(()) => acknowledged.push(delta.clone()),
                        Err(_) => break, // disk full: this append was never acknowledged
                    }
                }
            }
        }
        let replay = replay_journal(&handle.bytes());
        prop_assert_eq!(
            replay.deltas.len(),
            acknowledged.len(),
            "every acknowledged swap must replay; none beyond"
        );
        assert_prefix(&replay.deltas, &acknowledged, "after disk-full");

        // Folding the replayed deltas into an artifact never fails and never invents a
        // template that was not either seeded or acknowledged.
        let seed = template(8);
        let artifact = TemplateArtifact::new(vec![seed.clone()], 10, Default::default()).unwrap();
        let snapshot = recovered_snapshot(&artifact, &replay.deltas).unwrap();
        let allowed: std::collections::BTreeSet<String> = std::iter::once(&seed)
            .chain(acknowledged.iter().flat_map(|d| d.added.iter()))
            .map(StructureTemplate::canonical_string)
            .collect();
        for t in snapshot.templates() {
            prop_assert!(allowed.contains(&t.canonical_string()), "phantom template recovered");
        }
    }
}

/// Deterministic spot check alongside the properties: a byte flipped inside a frame's
/// checksum region stops replay at that frame without touching earlier entries.
#[test]
fn corrupt_checksum_stops_replay_at_the_bad_frame() {
    let committed = build_deltas(&[vec![4], vec![9]]);
    let mut bytes = journal_bytes(&committed);
    let first = replay_journal(&bytes);
    assert_eq!(first.deltas.len(), 2);
    // Flip a byte inside the second frame's payload.
    let second_start = {
        let one = journal_bytes(&committed[..1]);
        one.len()
    };
    let target = second_start + 13; // past the 12-byte frame header, inside the payload
    bytes[target] ^= 0x40;
    let replay = replay_journal(&bytes);
    assert_eq!(
        replay.deltas.len(),
        1,
        "replay must stop at the corrupt frame"
    );
    assert_eq!(replay.deltas[0], committed[0]);
    assert!(replay.torn.is_some());
    assert_eq!(replay.valid_len, second_start);
}
