//! Property-based tests over the core invariants, spanning the workspace crates.

use datamaran::core::{
    collect_array_paths, compile, diff_compiled, parse_dataset, parse_dataset_span,
    parse_dataset_span_delta, reduce, shift_variants, unfold_at, CharSet, Datamaran, Dataset,
    MdlScorer, RecordTemplate, RegularityScorer, SpanParse, StructureTemplate,
};
use logsynth::spec::seg::{field, lit};
use logsynth::{DatasetSpec, FieldKind, RecordTypeSpec};
use proptest::prelude::*;

/// Strategy producing field values that contain no formatting characters.
fn field_value() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9]{1,12}"
}

/// Strategy producing a simple separator character.
fn separator() -> impl Strategy<Value = char> {
    prop_oneof![Just(','), Just(';'), Just('|'), Just(':'), Just(' ')]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Extracting the record template of an instantiated record and re-checking generation is
    /// a closed loop (Definition 2.1/2.2).
    #[test]
    fn record_template_roundtrip(values in prop::collection::vec(field_value(), 1..8), sep in separator()) {
        let line = format!("{}\n", values.join(&sep.to_string()));
        let charset = CharSet::from_chars([sep, '\n']);
        let template = RecordTemplate::from_instantiated(&line, &charset);
        prop_assert!(template.generates(&line, &charset));
        prop_assert_eq!(template.field_count(), values.len());
    }

    /// Reduction never loses the template's character set and its minimal expansion is never
    /// longer than the original record template.
    #[test]
    fn reduction_preserves_charset_and_shrinks(values in prop::collection::vec(field_value(), 2..12), sep in separator()) {
        let line = format!("{}\n", values.join(&sep.to_string()));
        let charset = CharSet::from_chars([sep, '\n']);
        let rt = RecordTemplate::from_instantiated(&line, &charset);
        let st = reduce(&rt);
        prop_assert!(st.char_set().is_subset(&charset));
        prop_assert!(st.min_expansion().len() <= rt.len());
    }

    /// A reduced template always matches the record it was reduced from.
    #[test]
    fn reduced_template_matches_its_source(values in prop::collection::vec(field_value(), 1..10), sep in separator()) {
        let line = format!("{}\n", values.join(&sep.to_string()));
        let charset = CharSet::from_chars([sep, '\n']);
        let st = reduce(&RecordTemplate::from_instantiated(&line, &charset));
        let dataset = Dataset::new(line.clone());
        let parse = parse_dataset(&dataset, std::slice::from_ref(&st), 10);
        prop_assert_eq!(parse.records.len(), 1, "template {} vs line {:?}", st, line);
        prop_assert!(parse.noise_lines.is_empty());
    }

    /// Parsing never double-counts bytes: records plus noise tile the dataset exactly.
    #[test]
    fn parse_partitions_the_dataset(lines in prop::collection::vec(prop::collection::vec(field_value(), 1..6), 1..20), sep in separator()) {
        let mut text = String::new();
        for fields in &lines {
            text.push_str(&fields.join(&sep.to_string()));
            text.push('\n');
        }
        let charset = CharSet::from_chars([sep, '\n']);
        let first_line = format!("{}\n", lines[0].join(&sep.to_string()));
        let st = StructureTemplate::from_record_template(
            &RecordTemplate::from_instantiated(&first_line, &charset),
        );
        let dataset = Dataset::new(text.clone());
        let parse = parse_dataset(&dataset, std::slice::from_ref(&st), 10);
        prop_assert_eq!(parse.record_bytes + parse.noise_bytes, text.len());
    }

    /// The sampling used by the search steps is always line-aligned and within budget.
    #[test]
    fn sampling_is_line_aligned(n_lines in 50usize..400, budget in 256usize..2048, seed in any::<u64>()) {
        let mut text = String::new();
        for i in 0..n_lines {
            text.push_str(&format!("entry,{i},{}\n", i * 3));
        }
        let dataset = Dataset::new(text.clone());
        let sample = dataset.sample(budget, 4, seed);
        prop_assert!(sample.len() <= budget + 64);
        for i in 0..sample.line_count() {
            prop_assert!(text.contains(sample.line(i)));
        }
    }

    /// Ground-truth spans emitted by the generator always match the generated text, for
    /// arbitrary record shapes.
    #[test]
    fn generator_ground_truth_is_consistent(
        n_records in 5usize..40,
        seed in any::<u64>(),
        sep in separator(),
        noise in 0.0f64..0.3,
    ) {
        let record_type = RecordTypeSpec::new(
            "t",
            vec![
                field(FieldKind::Integer { min: 0, max: 9999 }),
                lit(&sep.to_string()),
                field(FieldKind::Word),
                lit(&sep.to_string()),
                field(FieldKind::IpV4),
                lit("\n"),
            ],
        );
        let data = DatasetSpec::new("prop", vec![record_type], n_records, seed)
            .with_noise(noise)
            .generate();
        prop_assert_eq!(data.records.len(), n_records);
        for rec in &data.records {
            for f in &rec.fields {
                prop_assert_eq!(&data.text[f.start..f.end], f.value.as_str());
            }
        }
    }
}

/// Strategy producing CSV cell content that stresses the quoting rules: embedded quotes,
/// commas, carriage returns, bare newlines, and plain text, in any mix.
fn csv_cell() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just('a'),
            Just('Z'),
            Just('0'),
            Just(' '),
            Just('"'),
            Just(','),
            Just('\r'),
            Just('\n'),
        ],
        0..12,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// Parses one RFC-4180 row (which may contain newlines inside quoted cells) back into its
/// cells — the inverse of quoting each cell with `csv_quote` and joining with commas.
fn parse_csv_row(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        let mut cell = String::new();
        if chars.peek() == Some(&'"') {
            chars.next();
            loop {
                match chars.next() {
                    Some('"') => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            cell.push('"');
                        } else {
                            break;
                        }
                    }
                    Some(c) => cell.push(c),
                    None => break,
                }
            }
        } else {
            while let Some(&c) = chars.peek() {
                if c == ',' {
                    break;
                }
                cell.push(c);
                chars.next();
            }
        }
        cells.push(cell);
        match chars.next() {
            Some(',') => continue,
            _ => break,
        }
    }
    cells
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// CSV quoting round-trips arbitrary cell content — embedded quotes, commas, `\r`, and
    /// `\n` included — and span-backed cells serialize byte-identically to owned cells
    /// holding the same text (the export boundary must not care which variant it gets).
    #[test]
    fn csv_quoting_round_trips_and_cell_variants_agree(cells in prop::collection::vec(csv_cell(), 1..6)) {
        use datamaran::core::{csv_quote, table_to_csv, Cell, Table};
        use std::sync::Arc;

        // Round trip through the quoted representation.
        let line: String = cells
            .iter()
            .map(|c| csv_quote(c))
            .collect::<Vec<_>>()
            .join(",");
        prop_assert_eq!(parse_csv_row(&line), cells.clone());

        // Span cells over a shared buffer vs owned cells with the same text.
        let source: Arc<str> = Arc::from(cells.concat().as_str());
        let columns: Vec<String> = (0..cells.len()).map(|i| format!("c{i}")).collect();
        let mut spans = Table::new("t", columns.clone(), Arc::clone(&source));
        let mut offset = 0usize;
        spans.push_row(
            cells
                .iter()
                .map(|c| {
                    let start = offset;
                    offset += c.len();
                    Cell::Span { start, end: offset }
                })
                .collect(),
        );
        let owned = Table::from_strings("t", columns, vec![cells.clone()]);
        prop_assert_eq!(table_to_csv(&spans), table_to_csv(&owned));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A dataset spec with a fixed seed is a pure function: generating it twice in this
    /// thread and once more in a spawned thread yields byte-identical text and identical
    /// ground-truth spans.  Zipf-style weights exercise the weighted type pick, whose
    /// float-residue fallback used to make the draw rounding-sensitive.
    #[test]
    fn generation_is_byte_identical_across_runs_and_threads(
        n_records in 1usize..150,
        n_types in 1usize..8,
        seed in any::<u64>(),
        zipf in 0.5f64..2.0,
        noise in 0.0f64..0.4,
    ) {
        let types: Vec<RecordTypeSpec> = (0..n_types)
            .map(|i| {
                RecordTypeSpec::new(
                    format!("t{i}"),
                    vec![
                        lit("id="),
                        field(FieldKind::Integer { min: 0, max: 99_999 }),
                        lit(" src="),
                        field(FieldKind::IpV4),
                        lit(" msg="),
                        field(FieldKind::Word),
                        lit("\n"),
                    ],
                )
                .with_weight(1.0 / ((i + 1) as f64).powf(zipf))
            })
            .collect();
        let spec = DatasetSpec::new("det", types, n_records, seed).with_noise(noise);
        let first = spec.clone().generate();
        let second = spec.clone().generate();
        prop_assert_eq!(&first.text, &second.text);
        prop_assert_eq!(first.records.len(), second.records.len());

        let threaded_spec = spec.clone();
        let threaded = std::thread::spawn(move || threaded_spec.generate())
            .join()
            .expect("generator thread panicked");
        prop_assert_eq!(&first.text, &threaded.text);
        for (a, b) in first.records.iter().zip(threaded.records.iter()) {
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.end, b.end);
            prop_assert_eq!(a.fields.len(), b.fields.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// End-to-end: for a simple generated dataset of any size, Datamaran extracts at least as
    /// many records as the ground truth contains and never reports more bytes than exist.
    #[test]
    fn extraction_is_sane_on_random_simple_datasets(n_records in 40usize..120, seed in any::<u64>()) {
        let record_type = RecordTypeSpec::new(
            "kv",
            vec![
                lit("ts="),
                field(FieldKind::Epoch),
                lit(" level="),
                field(FieldKind::Level),
                lit(" msg="),
                field(FieldKind::Word),
                lit("\n"),
            ],
        );
        let data = DatasetSpec::new("prop_e2e", vec![record_type], n_records, seed).generate();
        let result = Datamaran::with_defaults().extract(&data.text).unwrap();
        let extracted: usize = result.structures.iter().map(|s| s.records.len()).sum();
        prop_assert!(extracted >= n_records, "extracted {} of {}", extracted, n_records);
        prop_assert!(result.noise_fraction <= 1.0);
    }
}

// -----------------------------------------------------------------------------------------
// Delta evaluation: delta parse + delta score must be indistinguishable from full re-parse
// -----------------------------------------------------------------------------------------

fn folded(example: &str, charset: &str) -> StructureTemplate {
    let cs = CharSet::from_chars(charset.chars());
    reduce(&RecordTemplate::from_instantiated(example, &cs))
}

fn flat_template(example: &str, charset: &str) -> StructureTemplate {
    let cs = CharSet::from_chars(charset.chars());
    StructureTemplate::from_record_template(&RecordTemplate::from_instantiated(example, &cs))
}

fn assert_parses_identical(full: &SpanParse, delta: &SpanParse, label: &str) {
    assert_eq!(full.records, delta.records, "{label}: records");
    assert_eq!(full.cells, delta.cells, "{label}: cells");
    assert_eq!(full.reps, delta.reps, "{label}: reps");
    assert_eq!(full.noise_lines, delta.noise_lines, "{label}: noise lines");
    assert_eq!(
        full.record_bytes, delta.record_bytes,
        "{label}: record bytes"
    );
    assert_eq!(full.noise_bytes, delta.noise_bytes, "{label}: noise bytes");
}

/// Delta-parses `variant` against `parent`'s parse, asserts the parse is identical to the
/// from-scratch parse, asserts the incremental MDL score is bit-identical to the full
/// score whenever the delta stats license column reuse, and returns the variant's parse
/// (the next link of a refinement chain).
fn check_delta_step(
    data: &Dataset,
    parent: &StructureTemplate,
    parent_parse: &SpanParse,
    variant: &StructureTemplate,
    label: &str,
) -> SpanParse {
    let full = parse_dataset_span(data, std::slice::from_ref(variant), 10);
    let pc = compile(parent);
    let vc = compile(variant);
    let Some(diff) = diff_compiled(&pc, &vc) else {
        // No usable diff (e.g. the edit changed the charset): the engine falls back to a
        // full parse, which is what `full` already is.
        return full;
    };
    let mut delta = SpanParse::default();
    let stats = parse_dataset_span_delta(data, &pc, parent_parse, &vc, &diff, 10, &mut delta);
    assert_parses_identical(&full, &delta, label);

    // Incremental scoring: reuse the parent's per-column aggregates exactly as the
    // refinement engine does (prefix columns when prefix-aligned, suffix columns only
    // when suffix-aligned) and require the bit-identical total.
    let scorer = MdlScorer;
    if stats.prefix_aligned() {
        let (_, parent_parts) = scorer
            .score_span_stats(data, parent, parent_parse)
            .expect("mdl keeps parts");
        let mut reuse = diff.column_reuse(parent.field_count(), variant.field_count());
        if !stats.suffix_aligned() && diff.suffix_columns > 0 {
            let from = variant.field_count() - diff.suffix_columns;
            for slot in reuse[from..].iter_mut() {
                *slot = None;
            }
        }
        let (incremental, _) = scorer
            .score_span_delta(data, variant, &delta, &parent_parts, &reuse)
            .expect("mdl scores incrementally");
        let fresh = scorer
            .score_span(data, variant, &full)
            .expect("mdl has a span path");
        assert_eq!(
            incremental.to_bits(),
            fresh.to_bits(),
            "{label}: incremental {incremental} vs fresh {fresh}"
        );
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random unfold/shift chains: starting from a folded array template over a random
    /// ragged dataset, apply a random sequence of refinement edits and at every link check
    /// that the delta parse equals the full re-parse and the incremental score is
    /// bit-identical to the full score.  Covers nested arrays via multi-line windows.
    #[test]
    fn delta_parse_and_score_equal_full_across_edit_chains(
        rows in prop::collection::vec(prop::collection::vec("[a-z0-9]{1,5}", 1..7), 6..30),
        sep in prop_oneof![Just(','), Just(';'), Just('|')],
        nested in any::<bool>(),
        edits in prop::collection::vec(any::<u16>(), 1..6),
    ) {
        let sep_s = sep.to_string();
        let mut text = String::new();
        for fields in &rows {
            text.push_str(&fields.join(&sep_s));
            text.push('\n');
        }
        if nested {
            // Append a block whose reduction nests an array inside an array body.
            for i in 0..6 {
                text.push_str(&format!("a{sep}{i}\na{sep}{}\n", i * 2));
            }
        }
        let data = Dataset::new(text.as_str());
        let mut current = if nested {
            folded(&format!("a{sep}1\na{sep}2\n"), &format!("{sep}\n"))
        } else {
            folded(&format!("1{sep}2{sep}3\n"), &format!("{sep}\n"))
        };
        let mut current_parse = parse_dataset_span(&data, std::slice::from_ref(&current), 10);
        for (step, pick) in edits.iter().enumerate() {
            // Enumerate this template's possible edits the way the refiner would.
            let mut variants: Vec<StructureTemplate> = Vec::new();
            for path in collect_array_paths(current.nodes()) {
                for reps in 1..=4usize {
                    for partial in [false, true] {
                        if let Some(v) = unfold_at(&current, &path, reps, partial) {
                            variants.push(v);
                        }
                    }
                }
            }
            variants.extend(shift_variants(&current));
            if variants.is_empty() {
                break;
            }
            let variant = variants[*pick as usize % variants.len()].clone();
            let label = format!("step {step}: {current} -> {variant}");
            let variant_parse = check_delta_step(&data, &current, &current_parse, &variant, &label);
            current = variant;
            current_parse = variant_parse;
        }
    }
}

/// Regression: a shift variant whose records straddle the parent's record boundaries.  The
/// rotated two-line template matches from the *second* line of each parent record through
/// the first line of the next one, so every variant record crosses a parent boundary and
/// none of the parent's records carry forward — the delta parser must fall back to full
/// per-line matching for the straddling region and still reproduce the exact parse.
#[test]
fn shift_variant_straddling_record_boundaries_delta_parses_exactly() {
    let mut text = String::new();
    for i in 0..30 {
        text.push_str(&format!("HDR {i}\nval={i};st=ok\n"));
    }
    let data = Dataset::new(text.as_str());
    let parent = flat_template("HDR 1\nval=2;st=ok\n", " =;\n");
    let parent_parse = parse_dataset_span(&data, std::slice::from_ref(&parent), 10);
    assert_eq!(parent_parse.records.len(), 30);

    let variants = shift_variants(&parent);
    assert_eq!(variants.len(), 1);
    let variant = &variants[0];
    let pc = compile(&parent);
    let vc = compile(variant);
    let diff = diff_compiled(&pc, &vc).expect("rotation shares boundary ops");
    let mut delta = SpanParse::default();
    let stats = parse_dataset_span_delta(&data, &pc, &parent_parse, &vc, &diff, 10, &mut delta);
    let full = parse_dataset_span(&data, std::slice::from_ref(variant), 10);
    assert_parses_identical(&full, &delta, "straddling shift");

    // Every variant record starts mid-parent-record (odd line) and crosses the boundary
    // into the following parent record.
    assert!(!delta.records.is_empty());
    for rec in &delta.records {
        assert_eq!(rec.line_span.0 % 2, 1, "record starts on a value line");
        assert_eq!(
            rec.line_span.1 - rec.line_span.0,
            2,
            "record spans the boundary"
        );
    }
    // The dirty region genuinely straddled: nothing could be copied forward, every parent
    // record start was consulted and rejected, and the real records surfaced as extras.
    assert_eq!(stats.reused_records, 0, "{stats:?}");
    assert!(stats.dropped_records > 0, "{stats:?}");
    assert!(stats.extra_records > 0, "{stats:?}");
    assert!(!stats.prefix_aligned(), "{stats:?}");
}
