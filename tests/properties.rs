//! Property-based tests over the core invariants, spanning the workspace crates.

use datamaran::core::{
    parse_dataset, reduce, CharSet, Datamaran, Dataset, RecordTemplate, StructureTemplate,
};
use logsynth::spec::seg::{field, lit};
use logsynth::{DatasetSpec, FieldKind, RecordTypeSpec};
use proptest::prelude::*;

/// Strategy producing field values that contain no formatting characters.
fn field_value() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9]{1,12}"
}

/// Strategy producing a simple separator character.
fn separator() -> impl Strategy<Value = char> {
    prop_oneof![Just(','), Just(';'), Just('|'), Just(':'), Just(' ')]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Extracting the record template of an instantiated record and re-checking generation is
    /// a closed loop (Definition 2.1/2.2).
    #[test]
    fn record_template_roundtrip(values in prop::collection::vec(field_value(), 1..8), sep in separator()) {
        let line = format!("{}\n", values.join(&sep.to_string()));
        let charset = CharSet::from_chars([sep, '\n']);
        let template = RecordTemplate::from_instantiated(&line, &charset);
        prop_assert!(template.generates(&line, &charset));
        prop_assert_eq!(template.field_count(), values.len());
    }

    /// Reduction never loses the template's character set and its minimal expansion is never
    /// longer than the original record template.
    #[test]
    fn reduction_preserves_charset_and_shrinks(values in prop::collection::vec(field_value(), 2..12), sep in separator()) {
        let line = format!("{}\n", values.join(&sep.to_string()));
        let charset = CharSet::from_chars([sep, '\n']);
        let rt = RecordTemplate::from_instantiated(&line, &charset);
        let st = reduce(&rt);
        prop_assert!(st.char_set().is_subset(&charset));
        prop_assert!(st.min_expansion().len() <= rt.len());
    }

    /// A reduced template always matches the record it was reduced from.
    #[test]
    fn reduced_template_matches_its_source(values in prop::collection::vec(field_value(), 1..10), sep in separator()) {
        let line = format!("{}\n", values.join(&sep.to_string()));
        let charset = CharSet::from_chars([sep, '\n']);
        let st = reduce(&RecordTemplate::from_instantiated(&line, &charset));
        let dataset = Dataset::new(line.clone());
        let parse = parse_dataset(&dataset, std::slice::from_ref(&st), 10);
        prop_assert_eq!(parse.records.len(), 1, "template {} vs line {:?}", st, line);
        prop_assert!(parse.noise_lines.is_empty());
    }

    /// Parsing never double-counts bytes: records plus noise tile the dataset exactly.
    #[test]
    fn parse_partitions_the_dataset(lines in prop::collection::vec(prop::collection::vec(field_value(), 1..6), 1..20), sep in separator()) {
        let mut text = String::new();
        for fields in &lines {
            text.push_str(&fields.join(&sep.to_string()));
            text.push('\n');
        }
        let charset = CharSet::from_chars([sep, '\n']);
        let first_line = format!("{}\n", lines[0].join(&sep.to_string()));
        let st = StructureTemplate::from_record_template(
            &RecordTemplate::from_instantiated(&first_line, &charset),
        );
        let dataset = Dataset::new(text.clone());
        let parse = parse_dataset(&dataset, std::slice::from_ref(&st), 10);
        prop_assert_eq!(parse.record_bytes + parse.noise_bytes, text.len());
    }

    /// The sampling used by the search steps is always line-aligned and within budget.
    #[test]
    fn sampling_is_line_aligned(n_lines in 50usize..400, budget in 256usize..2048, seed in any::<u64>()) {
        let mut text = String::new();
        for i in 0..n_lines {
            text.push_str(&format!("entry,{i},{}\n", i * 3));
        }
        let dataset = Dataset::new(text.clone());
        let sample = dataset.sample(budget, 4, seed);
        prop_assert!(sample.len() <= budget + 64);
        for i in 0..sample.line_count() {
            prop_assert!(text.contains(sample.line(i)));
        }
    }

    /// Ground-truth spans emitted by the generator always match the generated text, for
    /// arbitrary record shapes.
    #[test]
    fn generator_ground_truth_is_consistent(
        n_records in 5usize..40,
        seed in any::<u64>(),
        sep in separator(),
        noise in 0.0f64..0.3,
    ) {
        let record_type = RecordTypeSpec::new(
            "t",
            vec![
                field(FieldKind::Integer { min: 0, max: 9999 }),
                lit(&sep.to_string()),
                field(FieldKind::Word),
                lit(&sep.to_string()),
                field(FieldKind::IpV4),
                lit("\n"),
            ],
        );
        let data = DatasetSpec::new("prop", vec![record_type], n_records, seed)
            .with_noise(noise)
            .generate();
        prop_assert_eq!(data.records.len(), n_records);
        for rec in &data.records {
            for f in &rec.fields {
                prop_assert_eq!(&data.text[f.start..f.end], f.value.as_str());
            }
        }
    }
}

/// Strategy producing CSV cell content that stresses the quoting rules: embedded quotes,
/// commas, carriage returns, bare newlines, and plain text, in any mix.
fn csv_cell() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just('a'),
            Just('Z'),
            Just('0'),
            Just(' '),
            Just('"'),
            Just(','),
            Just('\r'),
            Just('\n'),
        ],
        0..12,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// Parses one RFC-4180 row (which may contain newlines inside quoted cells) back into its
/// cells — the inverse of quoting each cell with `csv_quote` and joining with commas.
fn parse_csv_row(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        let mut cell = String::new();
        if chars.peek() == Some(&'"') {
            chars.next();
            loop {
                match chars.next() {
                    Some('"') => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            cell.push('"');
                        } else {
                            break;
                        }
                    }
                    Some(c) => cell.push(c),
                    None => break,
                }
            }
        } else {
            while let Some(&c) = chars.peek() {
                if c == ',' {
                    break;
                }
                cell.push(c);
                chars.next();
            }
        }
        cells.push(cell);
        match chars.next() {
            Some(',') => continue,
            _ => break,
        }
    }
    cells
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// CSV quoting round-trips arbitrary cell content — embedded quotes, commas, `\r`, and
    /// `\n` included — and span-backed cells serialize byte-identically to owned cells
    /// holding the same text (the export boundary must not care which variant it gets).
    #[test]
    fn csv_quoting_round_trips_and_cell_variants_agree(cells in prop::collection::vec(csv_cell(), 1..6)) {
        use datamaran::core::{csv_quote, table_to_csv, Cell, Table};
        use std::sync::Arc;

        // Round trip through the quoted representation.
        let line: String = cells
            .iter()
            .map(|c| csv_quote(c))
            .collect::<Vec<_>>()
            .join(",");
        prop_assert_eq!(parse_csv_row(&line), cells.clone());

        // Span cells over a shared buffer vs owned cells with the same text.
        let source: Arc<str> = Arc::from(cells.concat().as_str());
        let columns: Vec<String> = (0..cells.len()).map(|i| format!("c{i}")).collect();
        let mut spans = Table::new("t", columns.clone(), Arc::clone(&source));
        let mut offset = 0usize;
        spans.push_row(
            cells
                .iter()
                .map(|c| {
                    let start = offset;
                    offset += c.len();
                    Cell::Span { start, end: offset }
                })
                .collect(),
        );
        let owned = Table::from_strings("t", columns, vec![cells.clone()]);
        prop_assert_eq!(table_to_csv(&spans), table_to_csv(&owned));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// End-to-end: for a simple generated dataset of any size, Datamaran extracts at least as
    /// many records as the ground truth contains and never reports more bytes than exist.
    #[test]
    fn extraction_is_sane_on_random_simple_datasets(n_records in 40usize..120, seed in any::<u64>()) {
        let record_type = RecordTypeSpec::new(
            "kv",
            vec![
                lit("ts="),
                field(FieldKind::Epoch),
                lit(" level="),
                field(FieldKind::Level),
                lit(" msg="),
                field(FieldKind::Word),
                lit("\n"),
            ],
        );
        let data = DatasetSpec::new("prop_e2e", vec![record_type], n_records, seed).generate();
        let result = Datamaran::with_defaults().extract(&data.text).unwrap();
        let extracted: usize = result.structures.iter().map(|s| s.records.len()).sum();
        prop_assert!(extracted >= n_records, "extracted {} of {}", extracted, n_records);
        prop_assert!(result.noise_fraction <= 1.0);
    }
}
