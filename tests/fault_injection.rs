//! Fault-injection suite for the hardened streaming pipeline: hostile input must never
//! panic, quarantined bytes must round-trip exactly, transient sink failures must be
//! absorbed by the retry decorator with a deterministic backoff schedule, and durable
//! write counts must stay truthful when a sink dies mid-stream.
//!
//! The corrupted-input corpus is generated with the (offline) `proptest` shim: invalid
//! UTF-8 runs, NUL bytes, truncated final records, and interleaved binary garbage are
//! mixed into an otherwise regular log, and the guarded pipeline is driven under every
//! error policy.

use datamaran::core::{
    CountingSink, CsvSink, Datamaran, Error, ErrorPolicy, FailingReader, FailingSink,
    FaultSchedule, JsonLinesSink, QuarantineSink, RecordSink, RecordingSleeper, RetryPolicy,
    RetryingSink, StreamBudgets, StreamOptions, StreamSession, StreamSummary, Tee,
    VecQuarantineSink,
};
use proptest::prelude::*;
use std::io::{BufRead, Cursor};
use std::time::Duration;

/// The suite predates [`StreamSession`]; this keeps every call site in the historical
/// free-function shape while driving the current builder surface.
fn extract_stream_sink_guarded<R: BufRead, S: RecordSink + ?Sized>(
    engine: &Datamaran,
    reader: R,
    options: StreamOptions,
    sink: &mut S,
    quarantine: Option<&mut dyn QuarantineSink>,
) -> Result<StreamSummary, Error> {
    let mut session = StreamSession::new(engine).options(options);
    if let Some(q) = quarantine {
        session = session.quarantine(q);
    }
    session.run(reader, sink)
}

fn extract_stream_sink<R: BufRead, S: RecordSink + ?Sized>(
    engine: &Datamaran,
    reader: R,
    options: StreamOptions,
    sink: &mut S,
) -> Result<StreamSummary, Error> {
    StreamSession::new(engine)
        .options(options)
        .run(reader, sink)
}

/// A regular single-line log every fixture starts from.
fn web_log(n: usize) -> String {
    (0..n)
        .map(|i| {
            format!(
                "[{:02}:{:02}] 10.0.{}.{} GET /p{}\n",
                i % 24,
                i % 60,
                i % 8,
                i % 250,
                i % 7
            )
        })
        .collect()
}

fn small_windows() -> StreamOptions {
    StreamOptions {
        head_bytes: 4 * 1024,
        window_bytes: 1024,
        ..StreamOptions::default()
    }
}

/// Checks that every quarantined entry is byte-identical to a slice of the input.
fn assert_quarantine_round_trips(input: &[u8], quarantine: &VecQuarantineSink) {
    for entry in &quarantine.entries {
        assert!(
            input
                .windows(entry.bytes.len())
                .any(|w| w == entry.bytes.as_slice()),
            "quarantined line {} ({:?}) is not a byte-identical slice of the input: {:?}",
            entry.line,
            entry.reason,
            entry.bytes
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Hostile input — binary garbage lines, NUL bytes, invalid UTF-8, and a truncated
    /// final record — must stream to a clean summary (Skip) and to a byte-exact
    /// quarantine (Quarantine); never a panic.
    #[test]
    fn corrupted_corpus_never_panics(
        n in 80usize..160,
        garbage in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..24), 1..8),
        inject_nul in any::<bool>(),
        truncate_tail in any::<bool>(),
    ) {
        let mut bytes = Vec::new();
        let clean = web_log(n);
        let lines: Vec<&str> = clean.lines().collect();
        let stride = lines.len() / (garbage.len() + 1) + 1;
        let mut garbage_iter = garbage.iter();
        for (i, line) in lines.iter().enumerate() {
            bytes.extend_from_slice(line.as_bytes());
            bytes.push(b'\n');
            if i % stride == stride - 1 {
                if let Some(blob) = garbage_iter.next() {
                    // Strip newlines so each blob stays one (possibly empty) line.
                    bytes.extend(blob.iter().filter(|&&b| b != b'\n'));
                    bytes.push(b'\n');
                }
            }
        }
        if inject_nul {
            bytes.extend_from_slice(b"nul\0\0bytes\n");
        }
        if truncate_tail {
            bytes.extend_from_slice(b"[23:59] 10.0.7.24"); // record cut mid-line, no newline
        }

        let engine = Datamaran::with_defaults();

        // Skip: the default policy digests anything without erroring.
        let mut sink = CountingSink::default();
        let summary = extract_stream_sink_guarded(
            &engine,
            Cursor::new(bytes.clone()),
            small_windows(),
            &mut sink,
            None,
        );
        let summary = match summary {
            Ok(s) => s,
            // Structured failure is acceptable on pathological corpora; panics are not.
            Err(e) => { let _ = e.to_string(); return Ok(()); }
        };
        prop_assert!(summary.records >= n, "records {} < {}", summary.records, n);
        prop_assert_eq!(summary.records, sink.records);

        // Quarantine: same input, and every rejected line round-trips byte-identically.
        let mut sink = CountingSink::default();
        let mut quarantine = VecQuarantineSink::default();
        let result = extract_stream_sink_guarded(
            &engine,
            Cursor::new(bytes.clone()),
            small_windows().with_on_error(ErrorPolicy::Quarantine),
            &mut sink,
            Some(&mut quarantine),
        );
        let summary = match result {
            Ok(s) => s,
            Err(e) => { let _ = e.to_string(); return Ok(()); }
        };
        prop_assert_eq!(summary.quarantined_lines, quarantine.entries.len());
        assert_quarantine_round_trips(&bytes, &quarantine);
    }
}

#[test]
fn nul_bytes_and_invalid_utf8_stream_without_panic() {
    let mut bytes = web_log(120).into_bytes();
    bytes.extend_from_slice(b"\x00\x00\x00\n");
    bytes.extend_from_slice(b"\xFF\xFE broken \xF0\x28\x8C\x28\n");
    bytes.extend_from_slice(web_log(40).as_bytes());

    let engine = Datamaran::with_defaults();
    let mut sink = CountingSink::default();
    let summary = extract_stream_sink_guarded(
        &engine,
        Cursor::new(bytes),
        small_windows(),
        &mut sink,
        None,
    )
    .expect("skip policy digests NUL and invalid UTF-8");
    assert_eq!(summary.records, 160);
    assert_eq!(
        summary.invalid_utf8_lines, 1,
        "only the non-UTF-8 line is lossy"
    );
}

#[test]
fn abort_policy_reports_decode_error_for_invalid_utf8() {
    let mut bytes = web_log(120).into_bytes();
    bytes.extend_from_slice(b"\xFF\xFE broken\n");
    bytes.extend_from_slice(web_log(20).as_bytes());

    let engine = Datamaran::with_defaults();
    let mut sink = CountingSink::default();
    let err = extract_stream_sink_guarded(
        &engine,
        Cursor::new(bytes),
        small_windows().with_on_error(ErrorPolicy::Abort),
        &mut sink,
        None,
    )
    .unwrap_err();
    assert!(matches!(err, Error::Decode { .. }), "{err:?}");
}

#[test]
fn truncated_final_record_is_extracted_or_quarantined_never_lost() {
    let mut text = web_log(150);
    text.push_str("[23:59] 10.0.7.24"); // final record cut mid-line, no trailing newline
    let input = text.clone().into_bytes();

    let engine = Datamaran::with_defaults();
    let mut sink = CountingSink::default();
    let mut quarantine = VecQuarantineSink::default();
    let summary = extract_stream_sink_guarded(
        &engine,
        Cursor::new(input.clone()),
        small_windows().with_on_error(ErrorPolicy::Quarantine),
        &mut sink,
        Some(&mut quarantine),
    )
    .expect("truncated tail streams cleanly");
    // Every input line is either a record or preserved in the quarantine.
    let total_lines = text.lines().count();
    assert_eq!(summary.records + quarantine.entries.len(), total_lines);
    assert_quarantine_round_trips(&input, &quarantine);
}

#[test]
fn oversized_line_is_skipped_with_bounded_memory() {
    // A 10 MB single line must not take the pipeline down (or force it to buffer the
    // whole line) when a line budget is set.
    let mut bytes = web_log(200).into_bytes();
    bytes.resize(bytes.len() + 10 * 1024 * 1024, b'x');
    bytes.push(b'\n');
    bytes.extend_from_slice(web_log(50).as_bytes());

    let engine = Datamaran::with_defaults();
    let mut sink = CountingSink::default();
    let options = small_windows().with_budgets(StreamBudgets {
        max_line_bytes: Some(64 * 1024),
        ..StreamBudgets::default()
    });
    let summary =
        extract_stream_sink_guarded(&engine, Cursor::new(bytes), options, &mut sink, None)
            .expect("oversized line is skipped, not fatal");
    assert_eq!(summary.oversized_lines, 1);
    assert_eq!(
        summary.records, 250,
        "records on both sides of the monster line"
    );
    assert!(
        summary.peak_window_bytes < 10 * 1024 * 1024,
        "peak window {} did not stay bounded",
        summary.peak_window_bytes
    );
}

#[test]
fn reader_failure_mid_stream_is_a_structured_io_error() {
    let text = web_log(400);
    let engine = Datamaran::with_defaults();

    for schedule in [
        FaultSchedule::FailNth(3),
        FaultSchedule::FailAfterBytes(6 * 1024),
    ] {
        let reader = FailingReader::new(Cursor::new(text.clone().into_bytes()), schedule);
        let mut sink = CountingSink::default();
        let err = extract_stream_sink_guarded(
            &engine,
            reader,
            StreamOptions {
                head_bytes: 2 * 1024,
                window_bytes: 512,
                ..StreamOptions::default()
            },
            &mut sink,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, Error::Io { .. }), "{schedule:?}: {err:?}");
        assert!(
            !err.is_transient(),
            "{schedule:?}: injected fault is permanent"
        );
    }
}

#[test]
fn retrying_sink_absorbs_transient_faults_with_deterministic_backoff() {
    let text = web_log(300);
    let engine = Datamaran::with_defaults();

    // The 5th record call fails transiently twice, then recovers.
    let failing = FailingSink::new(
        CountingSink::default(),
        FaultSchedule::Transient { at: 5, failures: 2 },
    );
    let mut sink =
        RetryingSink::with_sleeper(failing, RetryPolicy::default(), RecordingSleeper::default());
    let summary = extract_stream_sink_guarded(
        &engine,
        Cursor::new(text.into_bytes()),
        small_windows(),
        &mut sink,
        None,
    )
    .expect("transient faults are retried away");
    assert_eq!(summary.records, 300);
    assert_eq!(sink.accepted_records(), 300);
    assert_eq!(sink.retries(), 2);
    assert!(sink.finished(), "finish ran and flushed");
    assert_eq!(
        sink.inner().delivered,
        300,
        "inner sink saw every record exactly once"
    );
    // Deterministic exponential backoff: 10ms, then 20ms — nothing else.
    assert_eq!(
        sink.sleeper().slept,
        vec![Duration::from_millis(10), Duration::from_millis(20)]
    );
}

#[test]
fn retry_backoff_schedule_is_exact() {
    // Transient window wider than one retry round: each failing *call* restarts the
    // schedule, so the recorded delays are a pure function of the fault layout.
    let text = web_log(200);
    let engine = Datamaran::with_defaults();
    let failing = FailingSink::new(
        CountingSink::default(),
        FaultSchedule::Transient { at: 2, failures: 3 },
    );
    let mut sink =
        RetryingSink::with_sleeper(failing, RetryPolicy::default(), RecordingSleeper::default());
    extract_stream_sink_guarded(
        &engine,
        Cursor::new(text.into_bytes()),
        small_windows(),
        &mut sink,
        None,
    )
    .expect("three consecutive transient faults fit inside max_retries = 3");
    assert_eq!(sink.retries(), 3);
    // One call failed three times before succeeding: 10ms, 20ms, 40ms.
    assert_eq!(
        sink.sleeper().slept,
        vec![
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(40),
        ]
    );
}

#[test]
fn permanent_sink_failure_exhausts_retries_and_reports_durable_count() {
    let text = web_log(300);
    let engine = Datamaran::with_defaults();
    let failing = FailingSink::new(CountingSink::default(), FaultSchedule::FailNth(7));
    let mut sink =
        RetryingSink::with_sleeper(failing, RetryPolicy::default(), RecordingSleeper::default());
    let err = extract_stream_sink_guarded(
        &engine,
        Cursor::new(text.into_bytes()),
        small_windows(),
        &mut sink,
        None,
    )
    .unwrap_err();
    assert!(matches!(err, Error::Sink { .. }), "{err:?}");
    // Permanent faults are not retried at all, and the durable count is truthful: the
    // inner sink accepted exactly the 7 records before the fault.
    assert_eq!(sink.retries(), 0);
    assert_eq!(sink.accepted_records(), 7);
    assert!(!sink.finished(), "finish never succeeded");
    assert_eq!(sink.inner().delivered, 7);
    assert_eq!(sink.inner().inner().records, 7);
}

#[test]
fn transient_finish_failure_is_retried_and_reports_durable() {
    let text = web_log(150);
    let engine = Datamaran::with_defaults();
    let failing = FailingSink::passthrough(CountingSink::default()).with_finish_failures(2);
    let mut sink =
        RetryingSink::with_sleeper(failing, RetryPolicy::default(), RecordingSleeper::default());
    extract_stream_sink_guarded(
        &engine,
        Cursor::new(text.into_bytes()),
        small_windows(),
        &mut sink,
        None,
    )
    .expect("transient finish faults are retried away");
    assert!(sink.finished());
    assert_eq!(sink.retries(), 2);
    assert_eq!(sink.accepted_records(), 150);
    assert_eq!(
        sink.sleeper().slept,
        vec![Duration::from_millis(10), Duration::from_millis(20)]
    );
}

#[test]
fn quarantine_fraction_budget_stops_gracefully_on_garbage_flood() {
    // After a clean head, the stream degenerates into garbage; the quarantine-fraction
    // budget must stop the run gracefully (summary delivered, sink finished) instead of
    // quarantining gigabytes.
    let mut text = web_log(200);
    for i in 0..600 {
        text.push_str(&format!("<<corrupt blob {i} \u{fffd}>>\n"));
    }
    let engine = Datamaran::with_defaults();
    let mut sink = CountingSink::default();
    let mut quarantine = VecQuarantineSink::default();
    let options = small_windows()
        .with_on_error(ErrorPolicy::Quarantine)
        .with_budgets(StreamBudgets {
            max_quarantine_fraction: Some(0.3),
            ..StreamBudgets::default()
        });
    let summary = extract_stream_sink_guarded(
        &engine,
        Cursor::new(text.into_bytes()),
        options,
        &mut sink,
        Some(&mut quarantine),
    )
    .expect("budget stop is graceful, not an error");
    assert!(summary.stopped_reason.is_some(), "stopped early");
    assert!(
        quarantine.entries.len() < 600,
        "stopped before quarantining the whole flood ({} entries)",
        quarantine.entries.len()
    );
    assert_eq!(summary.records, sink.records, "sink still finished cleanly");
}

/// Clean input through the full fault-tolerance stack (retry decorator + attached
/// quarantine) must be byte-identical to the plain streaming path: the hardening layers
/// are observable only when faults actually occur.
#[test]
fn clean_input_is_byte_identical_through_the_fault_stack() {
    let mut text = String::new();
    for i in 0..400 {
        text.push_str(&format!(
            "host=h{};cpu={};mem={}\n",
            i % 12,
            i % 100,
            (i * 7) % 512
        ));
    }
    let engine = Datamaran::with_defaults();
    let options = small_windows();

    let mut plain = Tee(
        CsvSink::new(|_name: &str| Ok(Vec::<u8>::new())),
        JsonLinesSink::new(Vec::<u8>::new()),
    );
    extract_stream_sink(&engine, Cursor::new(text.clone()), options, &mut plain)
        .expect("plain streaming succeeds");
    let Tee(plain_csv, plain_jsonl) = plain;

    let guarded_inner = Tee(
        CsvSink::new(|_name: &str| Ok(Vec::<u8>::new())),
        JsonLinesSink::new(Vec::<u8>::new()),
    );
    let mut guarded = RetryingSink::with_sleeper(
        guarded_inner,
        RetryPolicy::default(),
        RecordingSleeper::default(),
    );
    let mut quarantine = VecQuarantineSink::default();
    extract_stream_sink_guarded(
        &engine,
        Cursor::new(text),
        options.with_on_error(ErrorPolicy::Quarantine),
        &mut guarded,
        Some(&mut quarantine),
    )
    .expect("guarded streaming succeeds");
    assert_eq!(guarded.retries(), 0, "no faults, no retries");
    assert!(guarded.sleeper().slept.is_empty(), "no backoff sleeps");
    let Tee(guarded_csv, guarded_jsonl) = guarded.into_inner();

    let plain_tables = plain_csv.into_writers();
    let guarded_tables = guarded_csv.into_writers();
    assert_eq!(plain_tables, guarded_tables, "CSV bytes identical");
    assert_eq!(
        plain_jsonl.into_writer(),
        guarded_jsonl.into_writer(),
        "JSON Lines bytes identical"
    );
}
