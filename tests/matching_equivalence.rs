//! Differential suite for the fused multi-template matcher: on every fixture the fused
//! backend (one merged prefix-trie/DFA pass per record start) must produce **byte-identical**
//! output to the trial backend (every template trialed in index order) — the flat
//! [`SpanParse`] arenas, the tree-walker-compatible [`ParseResult`], the end-to-end
//! relational tables, and the streaming CSV/JSONL sink bytes, on interleaved, multi-line,
//! and array fixtures, plus randomized template subsets and the guarded fault-injection
//! path over corrupted input.

use datamaran::core::{
    extract_records, parse_dataset_fused, parse_dataset_span_parallel_with, reduce, CharSet,
    CsvSink, Datamaran, DatamaranConfig, Dataset, ErrorPolicy, JsonLinesSink, MatchingBackend,
    ParallelOptions, RecordTemplate, SpanParse, StreamOptions, StructureTemplate, Tee,
    VecQuarantineSink,
};
use proptest::prelude::*;
use std::io::Cursor;

/// Flat structure template reduced from one instantiated example record.
fn template(example: &str, charset: &str) -> StructureTemplate {
    let cs = CharSet::from_chars(charset.chars());
    reduce(&RecordTemplate::from_instantiated(example, &cs))
}

fn assert_span_parse_eq(a: &SpanParse, b: &SpanParse, label: &str) {
    assert_eq!(a.records, b.records, "{label}: records");
    assert_eq!(a.cells, b.cells, "{label}: cells");
    assert_eq!(a.reps, b.reps, "{label}: reps");
    assert_eq!(a.noise_lines, b.noise_lines, "{label}: noise lines");
    assert_eq!(a.record_bytes, b.record_bytes, "{label}: record bytes");
    assert_eq!(a.noise_bytes, b.noise_bytes, "{label}: noise bytes");
}

/// Asserts the two backends agree on the span arenas (sequential and sharded) and on the
/// dispatched [`ParseResult`] for one template set.
fn assert_matching_equivalence(name: &str, text: &str, templates: &[StructureTemplate]) {
    let dataset = Dataset::new(text);
    let seq = ParallelOptions {
        threads: 1,
        min_chunk_lines: 1,
    };
    let trial =
        parse_dataset_span_parallel_with(&dataset, templates, 10, seq, MatchingBackend::Trial);
    let fused = parse_dataset_fused(&dataset, templates, 10);
    assert_span_parse_eq(&trial, &fused, name);

    for threads in [2, 5] {
        let options = ParallelOptions {
            threads,
            min_chunk_lines: 1,
        };
        let sharded = parse_dataset_span_parallel_with(
            &dataset,
            templates,
            10,
            options,
            MatchingBackend::Fused,
        );
        assert_span_parse_eq(&trial, &sharded, &format!("{name} ({threads} shards)"));
    }

    let fused_cfg = DatamaranConfig::default().with_matching_backend(MatchingBackend::Fused);
    let trial_cfg = DatamaranConfig::default().with_matching_backend(MatchingBackend::Trial);
    let a = extract_records(&dataset, templates, &fused_cfg);
    let b = extract_records(&dataset, templates, &trial_cfg);
    assert_eq!(a, b, "{name}: ParseResult across backends");
}

/// Interleaved fixture: bracketed syslog-style lines, csv rows, semicolon arrays, noise.
fn interleaved_text(n: usize) -> String {
    let mut text = String::new();
    for i in 0..n {
        match i % 5 {
            0 | 3 => {
                text.push_str(&format!("[{:02}:{:02}] host{} ok\n", i % 24, i % 60, i % 7));
            }
            1 => text.push_str(&format!("{i},{},{}\n", i * 7 % 40, i % 9)),
            2 => {
                let reps = i % 4 + 1;
                let body: Vec<String> = (0..reps).map(|k| format!("{}", i + k)).collect();
                text.push_str(&format!("{};\n", body.join(";")));
            }
            _ => text.push_str("!!! unparsed diagnostic !!!\n"),
        }
    }
    text
}

fn interleaved_templates() -> Vec<StructureTemplate> {
    vec![
        template("[00:01] host1 ok\n", "[:] \n"),
        template("1,2,3\n", ",\n"),
        template("1;2;3;\n", ";\n"),
    ]
}

#[test]
fn interleaved_fixture_is_backend_identical() {
    let text = interleaved_text(400);
    assert_matching_equivalence("interleaved", &text, &interleaved_templates());
}

#[test]
fn multiline_fixture_is_backend_identical() {
    let mut text = String::new();
    for i in 0..120 {
        match i % 3 {
            0 => text.push_str(&format!("req {i} start\n  status s{i}\n  took t{i}\n")),
            1 => text.push_str(&format!("{i},{}\n", i * 3)),
            _ => text.push_str("-- trace --\n"),
        }
    }
    let templates = vec![
        template("req 1 start\n  status s1\n  took t1\n", " \n"),
        template("1,2\n", ",\n"),
    ];
    assert_matching_equivalence("multiline", &text, &templates);
}

#[test]
fn array_fixture_is_backend_identical() {
    let mut text = String::new();
    for i in 0..150 {
        match i % 3 {
            0 => {
                let reps = i % 5 + 1;
                let body: Vec<String> = (0..reps).map(|k| format!("v{}", i + k)).collect();
                text.push_str(&format!("set {}: {};\n", i, body.join(", ")));
            }
            1 => text.push_str(&format!("{i}|{}|{}\n", i % 8, i * 2 % 13)),
            _ => text.push_str(&format!("[{:02}] t{} done\n", i % 30, i)),
        }
    }
    let templates = vec![
        template("set 1: v1, v2, v3;\n", ":,; \n"),
        template("1|2|3\n", "|\n"),
        template("[01] t1 done\n", "[] \n"),
    ];
    assert_matching_equivalence("arrays", &text, &templates);
}

/// A template whose first op is a field (no literal anchor) must survive fused pruning —
/// the regression shape that originally diverged discovery.
#[test]
fn leading_field_templates_are_backend_identical() {
    let mut text = String::new();
    for i in 0..100 {
        if i % 2 == 0 {
            text.push_str(&format!("[{:02}:{:02}] host{} ok\n", i % 24, i % 60, i % 4));
        } else {
            text.push_str(&format!("{i},{},{}\n", i * 7 % 40, i % 9));
        }
    }
    let templates = vec![
        template("[00:01] host1 ok\n", "[:] \n"),
        template("1,2,3\n", ",\n"),
    ];
    assert_matching_equivalence("leading-field", &text, &templates);
    let reversed: Vec<_> = templates.into_iter().rev().collect();
    assert_matching_equivalence("leading-field reversed", &text, &reversed);
}

/// End-to-end discovery + extraction + relational output must be identical across
/// backends: matching equivalence implies the whole pipeline (residual computation,
/// set scoring, final extraction) takes the same path.
#[test]
fn full_pipeline_is_backend_identical() {
    let text = interleaved_text(300);
    let fused =
        Datamaran::new(DatamaranConfig::default().with_matching_backend(MatchingBackend::Fused))
            .unwrap()
            .extract(&text)
            .unwrap();
    let trial =
        Datamaran::new(DatamaranConfig::default().with_matching_backend(MatchingBackend::Trial))
            .unwrap()
            .extract(&text)
            .unwrap();
    assert_eq!(fused.noise_lines, trial.noise_lines);
    assert_eq!(fused.structures.len(), trial.structures.len());
    for (a, b) in fused.structures.iter().zip(&trial.structures) {
        assert_eq!(a.template, b.template);
        assert_eq!(a.relational, b.relational, "template {}", a.template);
        assert_eq!(a.denormalized, b.denormalized, "template {}", a.template);
    }
}

/// Streaming with a fixed multi-template set: CSV and JSONL sink bytes must match across
/// backends, windows and all, and the fused run must actually go through the fused path.
#[test]
fn streaming_sink_bytes_are_backend_identical() {
    let text = interleaved_text(500);
    let templates = interleaved_templates();
    let options = StreamOptions {
        head_bytes: 512,
        window_bytes: 2048,
        ..StreamOptions::default()
    };

    let run = |backend: MatchingBackend| {
        let engine =
            Datamaran::new(DatamaranConfig::default().with_matching_backend(backend)).unwrap();
        let mut sink = Tee(
            CsvSink::new(|_name: &str| Ok(Vec::<u8>::new())),
            JsonLinesSink::new(Vec::<u8>::new()),
        );
        let summary = datamaran::core::StreamSession::new(&engine)
            .options(options)
            .templates(templates.clone())
            .run(Cursor::new(text.clone()), &mut sink)
            .expect("streaming succeeds");
        let Tee(csv, jsonl) = sink;
        let csv_bytes: Vec<(String, Vec<u8>)> = csv.into_writers();
        (summary, csv_bytes, jsonl.into_writer())
    };

    let (fused_summary, fused_csv, fused_jsonl) = run(MatchingBackend::Fused);
    let (trial_summary, trial_csv, trial_jsonl) = run(MatchingBackend::Trial);

    assert_eq!(fused_summary.records, trial_summary.records);
    assert_eq!(fused_summary.noise_lines, trial_summary.noise_lines);
    assert_eq!(fused_summary.windows, trial_summary.windows);
    assert_eq!(fused_csv, trial_csv, "CSV bytes across backends");
    assert_eq!(fused_jsonl, trial_jsonl, "JSONL bytes across backends");

    let fs = fused_summary.match_stats();
    let ts = trial_summary.match_stats();
    assert!(fs.fused_dispatches > 0, "fused run used the fused path");
    assert!(fs.templates_pruned > 0, "fused run pruned trials");
    assert_eq!(ts.fused_dispatches, 0, "trial run never fused");
    assert_eq!(ts.templates_pruned, 0);
    assert_eq!(fs.lines_dispatched, ts.lines_dispatched);
    assert_eq!(
        fused_summary.window_match_stats.len(),
        fused_summary.windows
    );
}

/// Guarded fault-injection fixtures (invalid UTF-8, NUL bytes, oversized lines) through
/// the fused path: summaries, sink bytes, and quarantine contents match the trial path.
#[test]
fn guarded_fault_fixtures_are_backend_identical() {
    let mut bytes = Vec::new();
    for i in 0..160u32 {
        match i % 6 {
            0 | 1 => bytes.extend_from_slice(
                format!("[{:02}:{:02}] host{} ok\n", i % 24, i % 60, i % 5).as_bytes(),
            ),
            2 | 3 => bytes.extend_from_slice(format!("{i},{},{}\n", i % 40, i % 9).as_bytes()),
            4 => {
                bytes.extend_from_slice(b"corrupt \xFF\xFE line \x00 here\n");
            }
            _ => bytes.extend_from_slice(b"### noise ###\n"),
        }
    }
    let options = StreamOptions {
        head_bytes: 1024,
        window_bytes: 1024,
        ..StreamOptions::default()
    }
    .with_on_error(ErrorPolicy::Quarantine);
    let templates = vec![
        template("[00:01] host1 ok\n", "[:] \n"),
        template("1,2,3\n", ",\n"),
    ];

    let run = |backend: MatchingBackend| {
        let engine =
            Datamaran::new(DatamaranConfig::default().with_matching_backend(backend)).unwrap();
        let mut sink = JsonLinesSink::new(Vec::<u8>::new());
        let mut quarantine = VecQuarantineSink::default();
        let summary = datamaran::core::StreamSession::new(&engine)
            .options(options)
            .templates(templates.clone())
            .quarantine(&mut quarantine)
            .run(Cursor::new(bytes.clone()), &mut sink)
            .expect("guarded streaming succeeds");
        (summary, sink.into_writer(), quarantine.entries)
    };

    let (fused_summary, fused_jsonl, fused_q) = run(MatchingBackend::Fused);
    let (trial_summary, trial_jsonl, trial_q) = run(MatchingBackend::Trial);

    assert_eq!(fused_summary.records, trial_summary.records);
    assert_eq!(fused_summary.noise_lines, trial_summary.noise_lines);
    assert_eq!(
        fused_summary.quarantined_lines,
        trial_summary.quarantined_lines
    );
    assert_eq!(
        fused_summary.invalid_utf8_lines,
        trial_summary.invalid_utf8_lines
    );
    assert_eq!(fused_jsonl, trial_jsonl, "guarded JSONL bytes");
    assert_eq!(fused_q.len(), trial_q.len(), "quarantine entry count");
    for (a, b) in fused_q.iter().zip(&trial_q) {
        assert_eq!(a.reason, b.reason);
        assert_eq!(a.bytes, b.bytes);
    }
    assert!(fused_summary.match_stats().fused_dispatches > 0);
}

/// Example record shapes the randomized subsets draw from: distinct charsets, shared
/// prefixes, leading fields, arrays — the shapes that stress prefix-trie pruning.
fn shape_pool() -> Vec<StructureTemplate> {
    vec![
        template("[00:01] host1 ok\n", "[:] \n"),
        template("[00:01] peer9 up\n", "[:] \n"),
        template("1,2,3\n", ",\n"),
        template("1,2\n", ",\n"),
        template("1;2;3;\n", ";\n"),
        template("a=1 b=2\n", "= \n"),
        template("req 1 start\n  took t1\n", " \n"),
        template("1|2|3\n", "|\n"),
    ]
}

fn shape_line(shape: usize, i: usize) -> String {
    match shape {
        0 => format!("[{:02}:{:02}] host{} ok\n", i % 24, i % 60, i % 7),
        1 => format!("[{:02}:{:02}] peer{} up\n", i % 24, (i * 3) % 60, i % 5),
        2 => format!("{i},{},{}\n", i * 7 % 40, i % 9),
        3 => format!("{i},{}\n", i * 5 % 31),
        4 => {
            let reps = i % 4 + 1;
            let body: Vec<String> = (0..reps).map(|k| format!("{}", i + k)).collect();
            format!("{};\n", body.join(";"))
        }
        5 => format!("a={} b={}\n", i % 17, i % 13),
        6 => format!("req {i} start\n  took t{i}\n"),
        _ => format!("{i}|{}|{}\n", i % 8, i * 2 % 13),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random template subsets over random interleavings: the fused matcher is
    /// byte-identical to trialing each template, whatever the live set is.
    #[test]
    fn random_template_subsets_are_backend_identical(
        subset in prop::collection::vec(0usize..8, 2..6),
        lines in prop::collection::vec(0usize..9, 20..120),
    ) {
        let pool = shape_pool();
        // Dedup while preserving order: repeated indices collapse to one template.
        let mut picked: Vec<usize> = Vec::new();
        for &s in &subset {
            if !picked.contains(&s) {
                picked.push(s);
            }
        }
        let templates: Vec<StructureTemplate> =
            picked.iter().map(|&s| pool[s].clone()).collect();
        let mut text = String::new();
        for (i, &l) in lines.iter().enumerate() {
            if l < 8 {
                text.push_str(&shape_line(l, i));
            } else {
                text.push_str("?? noise ??\n");
            }
        }
        let dataset = Dataset::new(text.as_str());
        let seq = ParallelOptions { threads: 1, min_chunk_lines: 1 };
        let trial = parse_dataset_span_parallel_with(
            &dataset, &templates, 10, seq, MatchingBackend::Trial,
        );
        let fused = parse_dataset_fused(&dataset, &templates, 10);
        prop_assert_eq!(&trial.records, &fused.records, "records for subset {:?}", picked);
        prop_assert_eq!(&trial.cells, &fused.cells);
        prop_assert_eq!(&trial.reps, &fused.reps);
        prop_assert_eq!(&trial.noise_lines, &fused.noise_lines);
    }
}
