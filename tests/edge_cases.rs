//! Failure-injection and edge-case integration tests: inputs a data lake actually contains
//! (empty files, missing trailing newlines, pure noise, huge lines, unicode, blank lines)
//! must never panic and must degrade predictably.

use datamaran::core::{Datamaran, DatamaranConfig, Error};

fn engine() -> Datamaran {
    Datamaran::with_defaults()
}

#[test]
fn empty_input_is_a_clean_error() {
    assert_eq!(engine().extract("").unwrap_err(), Error::EmptyDataset);
}

#[test]
fn whitespace_only_input_does_not_panic() {
    let result = engine().extract("   \n\n \n");
    // Either nothing is found or a trivial structure is reported; both are acceptable, a
    // panic is not.
    if let Ok(r) = result {
        assert!(r.record_count() <= 3);
    }
}

#[test]
fn pure_noise_reports_no_structure() {
    // Every line is unique prose with no repeated formatting skeleton.
    let mut text = String::new();
    let words = [
        "lorem",
        "ipsum",
        "dolor",
        "sit",
        "amet",
        "consectetur",
        "adipiscing",
    ];
    for i in 0..60usize {
        let mut line = String::new();
        for j in 0..(3 + (i * 7) % 5) {
            line.push_str(words[(i * 13 + j * 31) % words.len()]);
            line.push_str(&"x".repeat((i * j) % 4));
            line.push(' ');
        }
        text.push_str(line.trim_end());
        text.push('\n');
    }
    match engine().extract(&text) {
        Err(Error::NoStructureFound) => {}
        Ok(r) => {
            // If something is found it must at least respect the coverage threshold.
            assert!(r.structures.iter().all(|s| s.coverage >= 0.05));
        }
        Err(other) => panic!("unexpected error: {other}"),
    }
}

#[test]
fn missing_trailing_newline_still_extracts_every_record() {
    let mut text = String::new();
    for i in 0..100 {
        text.push_str(&format!("[{:02}] item{} ok\n", i % 60, i));
    }
    text.push_str("[99] item_last ok"); // no trailing '\n'
    let result = engine().extract(&text).unwrap();
    assert!(
        result.record_count() >= 100,
        "got {} records",
        result.record_count()
    );
}

#[test]
fn single_record_file_does_not_crash() {
    let result = engine().extract("a=1;b=2\n");
    // One line cannot clear a meaningful coverage threshold in general, but it must not
    // panic; any Ok result must contain at most one record.
    if let Ok(r) = result {
        assert!(r.record_count() <= 1);
    }
}

#[test]
fn very_long_lines_are_handled() {
    let mut text = String::new();
    for i in 0..50 {
        text.push_str(&format!("key{}={}\n", i, "v".repeat(8_000)));
    }
    let result = engine().extract(&text).unwrap();
    assert_eq!(result.record_count(), 50);
    assert!(result.structures[0].template.to_string().contains('='));
}

#[test]
fn unicode_field_values_are_preserved() {
    let mut text = String::new();
    let names = ["数据湖", "журнал", "ログ", "café", "naïve", "Ωmega"];
    for i in 0..120 {
        text.push_str(&format!(
            "[{:03}] user={} status=ok\n",
            i,
            names[i % names.len()]
        ));
    }
    let result = engine().extract(&text).unwrap();
    assert_eq!(result.record_count(), 120);
    let table = &result.structures[0].denormalized;
    let all_cells: String = (0..table.row_count()).flat_map(|r| table.row(r)).collect();
    assert!(all_cells.contains("数据湖"));
    assert!(all_cells.contains("café"));
}

#[test]
fn blank_lines_between_records_become_noise_not_fields() {
    let mut text = String::new();
    for i in 0..90 {
        text.push_str(&format!("{},{},{}\n", i, i * 2, i % 7));
        if i % 9 == 4 {
            text.push('\n');
        }
    }
    let result = engine().extract(&text).unwrap();
    let s = &result.structures[0];
    assert_eq!(s.records.len(), 90, "template {}", s.template);
    assert_eq!(s.template.field_count(), 3, "template {}", s.template);
}

#[test]
fn records_longer_than_the_span_limit_are_not_merged() {
    // Each logical record spans 4 lines; with L = 2 the extractor must not produce 4-line
    // records (it may extract a line-level structure or report noise instead).
    let mut text = String::new();
    for i in 0..60 {
        text.push_str(&format!(
            "open {i}\nstep a={i}\nstep b={}\nclose {i}\n",
            i * 2
        ));
    }
    let config = DatamaranConfig::default().with_max_line_span(2);
    let result = Datamaran::new(config).unwrap().extract(&text);
    if let Ok(r) = result {
        for s in &r.structures {
            for rec in &s.records {
                assert!(
                    rec.line_count() <= 2,
                    "record spans {} lines",
                    rec.line_count()
                );
            }
        }
    }
}

#[test]
fn carriage_returns_do_not_break_extraction() {
    let mut text = String::new();
    for i in 0..80 {
        text.push_str(&format!("{i};{};ok\r\n", i * 3));
    }
    let result = engine().extract(&text).unwrap();
    assert_eq!(result.record_count(), 80);
}

#[test]
fn invalid_configurations_are_rejected_not_panicked() {
    assert!(Datamaran::new(DatamaranConfig::default().with_alpha(0.0)).is_err());
    assert!(Datamaran::new(DatamaranConfig::default().with_alpha(7.0)).is_err());
    assert!(Datamaran::new(DatamaranConfig::default().with_max_line_span(0)).is_err());
    assert!(Datamaran::new(DatamaranConfig::default().with_prune_keep(0)).is_err());
}

#[test]
fn interleaved_types_with_heavy_noise_never_merge_noise_into_records() {
    let mut text = String::new();
    let mut noise = 0usize;
    for i in 0..200u64 {
        let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
        if h % 10 < 4 {
            text.push_str(&format!("EVT|{}|{}\n", 100 + i, h % 50));
        } else {
            text.push_str(&format!("{} queries in {}ms\n", h % 30, h % 400));
        }
        if h % 13 == 0 {
            noise += 1;
            text.push_str(&format!(
                "### checkpoint {} written to /var/tmp ###\n",
                h % 7
            ));
        }
    }
    let result = engine().extract(&text).unwrap();
    assert!(noise > 0);
    // All 200 structured lines must be explained by some record type; the checkpoint banners
    // may be noise or a third type but must not inflate any record's span.
    assert!(
        result.record_count() >= 200,
        "got {}",
        result.record_count()
    );
    for s in &result.structures {
        for rec in &s.records {
            assert_eq!(rec.line_count(), 1);
        }
    }
}
