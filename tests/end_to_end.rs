//! Cross-crate integration tests: logsynth corpora → datamaran-core / recordbreaker →
//! evalkit, exercising the full evaluation path used by the benchmark harness.
//!
//! Every case is `#[ignore]`d: this suite dominates the wall time of a plain
//! `cargo test -q`, so the tier-1 loop skips it and CI runs it in a dedicated
//! `cargo test -- --ignored` step.

use datamaran::core::{Datamaran, DatamaranConfig, SearchStrategy};
use evalkit::{criteria, view, Extractor};
use logsynth::{corpus, DatasetLabel, DatasetSpec};
use recordbreaker::RecordBreaker;

/// Shrinks a spec so the integration tests stay fast while keeping its structure.
fn small(spec: DatasetSpec, records: usize) -> DatasetSpec {
    spec.with_records(records)
}

#[test]
#[ignore = "slow integration suite; run via `cargo test -- --ignored` (dedicated CI step)"]
fn datamaran_extracts_every_fisher_style_dataset() {
    // The first five manual datasets (Fisher-style, single-line) must all extract
    // successfully with the default configuration.
    for spec in corpus::manual_25().into_iter().take(5) {
        let data = small(spec, 150).generate();
        let result = Datamaran::with_defaults()
            .extract(&data.text)
            .unwrap_or_else(|e| panic!("{}: {e}", data.name));
        let outcome = criteria::evaluate(&data, &view::datamaran_view(&data.text, &result));
        assert!(
            outcome.success(),
            "{} failed: {:?}",
            data.name,
            outcome.failures
        );
    }
}

#[test]
#[ignore = "slow integration suite; run via `cargo test -- --ignored` (dedicated CI step)"]
fn datamaran_handles_multi_line_github_style_datasets() {
    let specs: Vec<DatasetSpec> = corpus::github_100()
        .into_iter()
        .filter(|s| s.label() == DatasetLabel::MultiLineNonInterleaved)
        .take(2)
        .collect();
    for spec in specs {
        let data = small(spec, 120).generate();
        let result = Datamaran::with_defaults().extract(&data.text).unwrap();
        let outcome = criteria::evaluate(&data, &view::datamaran_view(&data.text, &result));
        assert!(
            outcome.boundary_recall > 0.95,
            "{}: boundary recall {:.2} ({:?})",
            data.name,
            outcome.boundary_recall,
            outcome.failures,
        );
    }
}

#[test]
#[ignore = "slow integration suite; run via `cargo test -- --ignored` (dedicated CI step)"]
fn recordbreaker_cannot_recover_multi_line_boundaries() {
    let spec = corpus::github_100()
        .into_iter()
        .find(|s| s.label() == DatasetLabel::MultiLineNonInterleaved)
        .expect("corpus has multi-line datasets");
    let data = small(spec, 100).generate();
    let rb = RecordBreaker::with_defaults().extract(&data.text);
    let outcome = criteria::evaluate(&data, &view::recordbreaker_view(&rb));
    assert!(!outcome.success());
    assert!(outcome.boundary_recall < 0.05);
}

#[test]
#[ignore = "slow integration suite; run via `cargo test -- --ignored` (dedicated CI step)"]
fn greedy_and_exhaustive_agree_on_simple_datasets() {
    let spec = small(corpus::manual_25()[2].clone(), 150);
    let data = spec.generate();
    for strategy in [SearchStrategy::Exhaustive, SearchStrategy::Greedy] {
        let config = DatamaranConfig::default().with_search(strategy);
        let result = Datamaran::new(config).unwrap().extract(&data.text).unwrap();
        let outcome = criteria::evaluate(&data, &view::datamaran_view(&data.text, &result));
        assert!(
            outcome.success(),
            "{} with {} search failed: {:?}",
            data.name,
            strategy.name(),
            outcome.failures
        );
    }
}

#[test]
#[ignore = "slow integration suite; run via `cargo test -- --ignored` (dedicated CI step)"]
fn no_structure_dataset_is_not_misreported_as_structured_success() {
    let spec = corpus::github_100()
        .into_iter()
        .find(|s| s.label() == DatasetLabel::NoStructure)
        .unwrap();
    let data = small(spec.clone(), 120).generate();
    // Whatever Datamaran returns on pure noise, the evaluation must not claim ground-truth
    // records were recovered (there are none) and the accuracy aggregation excludes it.
    let eval = evalkit::accuracy::evaluate_spec(
        &spec.clone().with_records(120),
        Extractor::DatamaranExhaustive,
        &DatamaranConfig::default(),
    );
    assert_eq!(eval.label, DatasetLabel::NoStructure);
    assert!(data.records.is_empty());
}

#[test]
#[ignore = "slow integration suite; run via `cargo test -- --ignored` (dedicated CI step)"]
fn extraction_relational_output_row_counts_match_ground_truth() {
    let spec = small(corpus::manual_25()[16].clone(), 200); // stackexchange-style XML rows
    let data = spec.generate();
    let result = Datamaran::with_defaults().extract(&data.text).unwrap();
    let total_rows: usize = result
        .structures
        .iter()
        .map(|s| s.relational.root().row_count())
        .sum();
    assert!(
        total_rows >= data.records.len(),
        "{} rows for {} ground-truth records",
        total_rows,
        data.records.len()
    );
}

#[test]
#[ignore = "slow integration suite; run via `cargo test -- --ignored` (dedicated CI step)"]
fn user_study_simulation_reproduces_figure_18_failure_pattern() {
    let mut a_failures = 0;
    let mut b_failures = 0;
    let mut r_failures = 0;
    for spec in evalkit::study_datasets() {
        let study = evalkit::simulate(&spec.with_records(100));
        let [a, b, r] = &study.outcomes;
        a_failures += usize::from(a.operations.is_none());
        b_failures += usize::from(b.operations.is_none());
        r_failures += usize::from(r.operations.is_none());
    }
    assert_eq!(a_failures, 0, "Datamaran output is always usable");
    assert!(
        b_failures >= 2,
        "noisy multi-line datasets fail from RecordBreaker output"
    );
    assert!(
        r_failures >= 2,
        "noisy multi-line datasets fail from the raw file"
    );
}
