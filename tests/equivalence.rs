//! Cross-implementation equivalence: the three extraction paths (recursive-descent parser,
//! table-driven LL(1) grammar parser, parallel chunked parser) and the streaming extractor
//! must all agree on the same inputs, and every discovered template must actually be LL(1).
//! (The span instruction-table engine has its own differential suite,
//! `extraction_equivalence.rs`, which stays in the tier-1 loop.)
//!
//! Every case is `#[ignore]`d: this suite dominates the wall time of a plain
//! `cargo test -q`, so the tier-1 loop skips it and CI runs it in a dedicated
//! `cargo test -- --ignored` step.

use datamaran::core::{
    parse_dataset, parse_dataset_parallel, Datamaran, Dataset, Grammar, ParallelOptions,
    StreamOptions, StreamSession,
};
use datamaran::logsynth::{corpus, DatasetSpec, RecordTypeSpec};
use std::io::Cursor;

/// Representative workloads: single-line, multi-line, interleaved, array-bearing, noisy.
fn workloads() -> Vec<(String, String)> {
    let families: Vec<(&str, Vec<RecordTypeSpec>, usize, f64)> = vec![
        ("weblog", vec![corpus::web_access(0)], 400, 0.02),
        ("http_blocks", vec![corpus::http_block(0)], 180, 0.01),
        (
            "interleaved",
            vec![corpus::web_access(0), corpus::pipe_events(0)],
            400,
            0.03,
        ),
    ];
    families
        .into_iter()
        .enumerate()
        .map(|(i, (name, types, n, noise))| {
            let spec = DatasetSpec::new(name, types, n, 1000 + i as u64).with_noise(noise);
            (name.to_string(), spec.generate().text)
        })
        .collect()
}

#[test]
#[ignore = "slow integration suite; run via `cargo test -- --ignored` (dedicated CI step)"]
fn discovered_templates_are_ll1_grammars() {
    for (name, text) in workloads() {
        let result = Datamaran::with_defaults().extract(&text).unwrap();
        assert!(!result.structures.is_empty(), "{name}: nothing extracted");
        for s in &result.structures {
            let grammar = Grammar::from_template(&s.template);
            assert!(
                grammar.is_ll1(),
                "{name}: template {} is not LL(1): {:?}",
                s.template,
                grammar.ll1_conflicts()
            );
        }
    }
}

#[test]
#[ignore = "slow integration suite; run via `cargo test -- --ignored` (dedicated CI step)"]
fn grammar_parser_agrees_with_recursive_descent_on_every_record() {
    for (name, text) in workloads() {
        let result = Datamaran::with_defaults().extract(&text).unwrap();
        for s in &result.structures {
            let grammar = Grammar::from_template(&s.template);
            for rec in s.records.iter().take(100) {
                let (end, fields) = grammar
                    .match_at(&text, rec.byte_span.0)
                    .unwrap_or_else(|| panic!("{name}: grammar rejects a matched record"));
                assert_eq!(end, rec.byte_span.1, "{name}: end offset differs");
                assert_eq!(fields, rec.fields, "{name}: field spans differ");
            }
        }
    }
}

#[test]
#[ignore = "slow integration suite; run via `cargo test -- --ignored` (dedicated CI step)"]
fn parallel_extraction_is_identical_to_sequential() {
    for (name, text) in workloads() {
        let result = Datamaran::with_defaults().extract(&text).unwrap();
        let templates: Vec<_> = result.templates().into_iter().cloned().collect();
        let dataset = Dataset::new(text.as_str());
        let sequential = parse_dataset(&dataset, &templates, 10);
        for threads in [2, 5] {
            let parallel = parse_dataset_parallel(
                &dataset,
                &templates,
                10,
                ParallelOptions {
                    threads,
                    min_chunk_lines: 1,
                },
            );
            assert_eq!(
                parallel.records.len(),
                sequential.records.len(),
                "{name}: record count differs with {threads} threads"
            );
            assert_eq!(parallel.noise_lines, sequential.noise_lines, "{name}");
            for (a, b) in parallel.records.iter().zip(&sequential.records) {
                assert_eq!(a.byte_span, b.byte_span, "{name}");
                assert_eq!(a.template_index, b.template_index, "{name}");
                assert_eq!(a.fields, b.fields, "{name}");
            }
        }
    }
}

#[test]
#[ignore = "slow integration suite; run via `cargo test -- --ignored` (dedicated CI step)"]
fn streaming_extraction_matches_in_memory_counts() {
    for (name, text) in workloads() {
        let engine = Datamaran::with_defaults();
        let in_memory = engine.extract(&text).unwrap();
        let mut streamed = 0usize;
        let summary = StreamSession::new(&engine)
            .options(StreamOptions {
                head_bytes: 16 * 1024,
                window_bytes: 8 * 1024,
                ..StreamOptions::default()
            })
            .run_with(Cursor::new(text.clone()), |_| streamed += 1)
            .unwrap();
        // The streaming extractor discovers structure on a bounded head rather than a
        // stratified sample of the whole file, so on interleaved datasets it may find the
        // record types in a different order; what must hold is that it explains at least as
        // many lines as it claims and is consistent with its own summary.
        assert_eq!(streamed, summary.records, "{name}");
        assert_eq!(
            summary.lines_processed,
            text.lines().count(),
            "{name}: every line is consumed exactly once"
        );
        // On single-record-type workloads the counts must match the in-memory extractor.
        if in_memory.structures.len() == 1 && summary.templates.len() == 1 {
            assert_eq!(summary.records, in_memory.record_count(), "{name}");
        }
    }
}
