//! Serving-layer correctness: concurrent readers never observe a torn template snapshot
//! while a writer hot-swaps the compiled set, and the versioned template artifact format
//! round-trips arbitrary discovered template sets losslessly.

use datamaran::core::{
    reduce, CharSet, Datamaran, Dataset, MatchingBackend, RecordTemplate, SnapshotStore,
    SpanScratch, StructureTemplate, TemplateArtifact, TemplateSnapshot,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Extracts the template set a corpus discovers, as both the templates and their
/// canonical display strings (the identity the swap test checks against).
fn discover(engine: &Datamaran, text: &str) -> (Vec<StructureTemplate>, Vec<String>) {
    let result = engine.extract(text).expect("discovery succeeds");
    let templates: Vec<StructureTemplate> = result.templates().into_iter().cloned().collect();
    let canon = templates.iter().map(|t| t.to_string()).collect();
    (templates, canon)
}

/// Readers continuously resolve the current snapshot and match a line against it while a
/// writer hot-swaps between two compiled template sets as fast as it can.  Every observed
/// snapshot must be internally consistent: its template set is exactly one of the two
/// published sets (never a mix), and its compiled matcher matches the line that set was
/// discovered from — a torn read (templates from one set, matcher from the other, or a
/// half-published `Arc`) fails one of the two assertions.
#[test]
fn concurrent_readers_never_observe_a_torn_snapshot() {
    let corpus_a: String = (0..200)
        .map(|i| format!("host=h{};cpu={};mem={}\n", i % 12, i % 100, (i * 7) % 512))
        .collect();
    let corpus_b: String = (0..200)
        .map(|i| {
            format!(
                "[{:02}:{:02}] srv{} GET /p{}\n",
                i % 24,
                i % 60,
                i % 4,
                i % 7
            )
        })
        .collect();
    let line_a = "host=h1;cpu=42;mem=128\n";
    let line_b = "[12:30] srv2 GET /p3\n";

    let engine = Datamaran::with_defaults();
    let (templates_a, canon_a) = discover(&engine, &corpus_a);
    let (templates_b, canon_b) = discover(&engine, &corpus_b);
    assert_ne!(
        canon_a, canon_b,
        "the two formats must discover distinct sets"
    );

    let store = SnapshotStore::new(
        TemplateSnapshot::compile(1, templates_a.clone(), &engine).expect("compile set A"),
    );
    let done = AtomicBool::new(false);
    let observed = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let mut cells = Vec::new();
                let mut reps = Vec::new();
                let mut scratch = SpanScratch::default();
                while !done.load(Ordering::Relaxed) {
                    let snapshot = store.current();
                    let canon: Vec<String> =
                        snapshot.templates().iter().map(|t| t.to_string()).collect();
                    let line = if canon == canon_a {
                        line_a
                    } else if canon == canon_b {
                        line_b
                    } else {
                        panic!("torn snapshot v{}: templates {canon:?}", snapshot.version());
                    };
                    let dataset = Dataset::new(line);
                    cells.clear();
                    reps.clear();
                    let matched = snapshot.matcher().match_line_into(
                        &dataset,
                        0,
                        &mut cells,
                        &mut reps,
                        &mut scratch,
                    );
                    assert!(
                        matched.is_some(),
                        "snapshot v{} does not match its own format's line",
                        snapshot.version()
                    );
                    observed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // The writer alternates the published set as fast as it can compile it.
        for i in 0..60 {
            let templates = if i % 2 == 0 {
                templates_b.clone()
            } else {
                templates_a.clone()
            };
            let snapshot = TemplateSnapshot::compile(store.claim_version(), templates, &engine)
                .expect("recompile during swap");
            store.swap(std::sync::Arc::new(snapshot));
        }
        done.store(true, Ordering::Relaxed);
    });

    assert!(
        observed.load(Ordering::Relaxed) > 0,
        "readers never completed a single observation"
    );
    assert!(store.version() > 60, "swaps advanced the version counter");
}

/// Builds the [`StructureTemplate`] set discovery would produce for a batch of
/// single-line record formats — per-format field values joined by one separator.
fn templates_from(values_list: &[Vec<String>], sep: char) -> Vec<StructureTemplate> {
    values_list
        .iter()
        .map(|values| {
            let line = format!("{}\n", values.join(&sep.to_string()));
            let charset = CharSet::from_chars([sep, '\n']);
            reduce(&RecordTemplate::from_instantiated(&line, &charset))
        })
        .collect()
}

/// Strategy producing a separator character a template's charset can carry.
fn separator() -> impl Strategy<Value = char> {
    prop_oneof![Just(','), Just(';'), Just('|'), Just(':'), Just(' ')]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The artifact format is lossless: serialize → parse preserves every template's
    /// canonical form, the matcher metadata, and the content checksum.
    #[test]
    fn artifact_json_round_trip_is_lossless(
        values_list in prop::collection::vec(prop::collection::vec("[a-zA-Z0-9]{1,10}", 1..7), 1..6),
        sep in separator(),
        max_line_span in 1usize..16,
        fused in any::<bool>(),
    ) {
        let backend = if fused { MatchingBackend::Fused } else { MatchingBackend::Trial };
        let artifact = TemplateArtifact::new(templates_from(&values_list, sep), max_line_span, backend)
            .expect("artifact from generated templates");
        let parsed = TemplateArtifact::from_json(&artifact.to_json())
            .expect("round trip through the wire format");
        let canon = |a: &TemplateArtifact| -> Vec<String> {
            a.templates.iter().map(|t| t.to_string()).collect()
        };
        prop_assert_eq!(canon(&parsed), canon(&artifact));
        prop_assert_eq!(parsed.max_line_span, artifact.max_line_span);
        prop_assert_eq!(parsed.matching_backend, artifact.matching_backend);
        prop_assert_eq!(parsed.checksum(), artifact.checksum());
    }

    /// Tampering with the serialized body is caught by the checksum, and documents from a
    /// future format version are rejected rather than misread.
    #[test]
    fn artifact_rejects_corruption_and_future_versions(
        values_list in prop::collection::vec(prop::collection::vec("[a-zA-Z0-9]{1,10}", 1..7), 1..4),
        sep in separator(),
    ) {
        let artifact = TemplateArtifact::new(templates_from(&values_list, sep), 8, MatchingBackend::Fused)
            .expect("artifact from generated templates");
        let json = artifact.to_json();

        let forged = json.replacen("\"version\": 1", "\"version\": 999", 1);
        prop_assert_ne!(&forged, &json);
        prop_assert!(TemplateArtifact::from_json(&forged).is_err());

        // Flip the checksum field: the body no longer hashes to it.
        let checksum = format!("{:016x}", artifact.checksum());
        let flipped: String = checksum
            .chars()
            .map(|c| if c == '0' { '1' } else { '0' })
            .collect();
        let corrupted = json.replacen(&checksum, &flipped, 1);
        prop_assert_ne!(&corrupted, &json);
        prop_assert!(TemplateArtifact::from_json(&corrupted).is_err());
    }
}
