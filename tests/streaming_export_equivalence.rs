//! Differential suite for the bounded-memory streaming export path: on every fixture the
//! streaming sinks ([`CsvSink`], [`JsonLinesSink`]) must emit **byte-identical** output to
//! the materialized serializers ([`table_to_csv`] over the in-memory relational tables,
//! [`all_records_jsonl`] over the in-memory extraction result) — including multi-line
//! records that straddle chunk windows, array templates whose child-table foreign keys are
//! synthesized across windows, interleaved record types, and cells that need RFC-4180
//! quoting (`\r`, embedded quotes, commas).

use datamaran::core::{
    all_records_jsonl, table_to_csv, CountingSink, CsvSink, Datamaran, ErrorPolicy, JsonLinesSink,
    RecordingSleeper, RetryPolicy, RetryingSink, StreamOptions, StreamSession, Tee,
    VecQuarantineSink,
};
use std::io::Cursor;

/// Runs in-memory extraction and the streaming sinks on the same text and asserts the
/// serialized bytes agree exactly.  `options` should make the window far smaller than the
/// text so real chunking happens; the head must be large enough that head discovery finds
/// the same templates as full-file discovery (asserted).
fn assert_streaming_equivalence(name: &str, text: &str, options: StreamOptions) {
    let engine = Datamaran::with_defaults();
    let result = engine.extract(text).expect("in-memory extraction succeeds");

    let mut sink = Tee(
        CsvSink::new(|_name: &str| Ok(Vec::<u8>::new())),
        Tee(
            JsonLinesSink::new(Vec::<u8>::new()),
            CountingSink::default(),
        ),
    );
    let summary = StreamSession::new(&engine)
        .options(options)
        .run(Cursor::new(text.to_string()), &mut sink)
        .expect("streaming extraction succeeds");
    let Tee(csv, Tee(jsonl, counter)) = sink;

    // Head discovery must agree with full-file discovery for the comparison to be
    // meaningful; every fixture is built to satisfy this.
    let in_memory_templates: Vec<String> =
        result.templates().iter().map(|t| t.to_string()).collect();
    let streamed_templates: Vec<String> = summary.templates.iter().map(|t| t.to_string()).collect();
    assert_eq!(streamed_templates, in_memory_templates, "{name}: templates");
    assert_eq!(summary.records, result.record_count(), "{name}: records");
    assert_eq!(counter.records, summary.records, "{name}: counter");

    // CSV: every normalized table, in order, byte for byte.
    let streamed_tables = csv.into_writers();
    let materialized: Vec<(String, String)> = result
        .structures
        .iter()
        .flat_map(|s| s.relational.tables.iter())
        .map(|t| (t.name.clone(), table_to_csv(t)))
        .collect();
    assert_eq!(
        streamed_tables.len(),
        materialized.len(),
        "{name}: table count"
    );
    for ((sn, sb), (mn, mb)) in streamed_tables.iter().zip(&materialized) {
        assert_eq!(sn, mn, "{name}: table name");
        assert_eq!(
            std::str::from_utf8(sb).unwrap(),
            mb,
            "{name}: CSV bytes of {sn}"
        );
    }

    // JSON Lines: byte for byte.
    let jsonl_bytes = jsonl.into_writer();
    assert_eq!(
        String::from_utf8(jsonl_bytes.clone()).unwrap(),
        all_records_jsonl(text, &result),
        "{name}: JSON Lines bytes"
    );

    // The full fault-tolerance stack — retry decorator around the sinks plus an attached
    // quarantine under the quarantine policy — must be invisible on clean input: same
    // bytes, zero retries, and a quarantine that holds exactly the noise lines.
    let guarded_inner = Tee(
        CsvSink::new(|_name: &str| Ok(Vec::<u8>::new())),
        JsonLinesSink::new(Vec::<u8>::new()),
    );
    let mut guarded = RetryingSink::with_sleeper(
        guarded_inner,
        RetryPolicy::default(),
        RecordingSleeper::default(),
    );
    let mut quarantine = VecQuarantineSink::default();
    let guarded_summary = StreamSession::new(&engine)
        .options(options.with_on_error(ErrorPolicy::Quarantine))
        .quarantine(&mut quarantine)
        .run(Cursor::new(text.to_string()), &mut guarded)
        .expect("guarded streaming succeeds");
    assert_eq!(
        guarded_summary.records, summary.records,
        "{name}: guarded records"
    );
    assert_eq!(guarded.retries(), 0, "{name}: clean input needs no retries");
    assert!(guarded.finished(), "{name}: guarded finish ran");
    assert_eq!(
        quarantine.entries.len(),
        guarded_summary.noise_lines,
        "{name}: quarantine holds exactly the noise lines"
    );
    for entry in &quarantine.entries {
        let bytes = text.as_bytes();
        assert!(
            bytes
                .windows(entry.bytes.len())
                .any(|w| w == entry.bytes.as_slice()),
            "{name}: quarantined line {} is not a byte-identical slice of the input",
            entry.line
        );
    }
    let Tee(guarded_csv, guarded_jsonl) = guarded.into_inner();
    let guarded_tables = guarded_csv.into_writers();
    let plain_tables: Vec<(String, Vec<u8>)> = materialized
        .iter()
        .map(|(n, c)| (n.clone(), c.clone().into_bytes()))
        .collect();
    assert_eq!(guarded_tables, plain_tables, "{name}: guarded CSV bytes");
    assert_eq!(
        guarded_jsonl.into_writer(),
        jsonl_bytes,
        "{name}: guarded JSON Lines bytes"
    );

    // The deprecated free-function surface is a thin wrapper over [`StreamSession`]; its
    // output must stay byte-identical to the session's until the wrappers are removed.
    #[allow(deprecated)]
    {
        use datamaran::core::{extract_stream_sink, extract_stream_sink_guarded};
        let mut legacy = Tee(
            CsvSink::new(|_name: &str| Ok(Vec::<u8>::new())),
            JsonLinesSink::new(Vec::<u8>::new()),
        );
        let legacy_summary =
            extract_stream_sink(&engine, Cursor::new(text.to_string()), options, &mut legacy)
                .expect("legacy streaming succeeds");
        assert_eq!(
            legacy_summary.records, summary.records,
            "{name}: legacy records"
        );
        let Tee(legacy_csv, legacy_jsonl) = legacy;
        assert_eq!(
            legacy_csv.into_writers(),
            plain_tables,
            "{name}: legacy CSV bytes"
        );
        assert_eq!(
            legacy_jsonl.into_writer(),
            jsonl_bytes,
            "{name}: legacy JSON Lines bytes"
        );

        let mut legacy_guarded = JsonLinesSink::new(Vec::<u8>::new());
        let mut legacy_quarantine = VecQuarantineSink::default();
        let legacy_guarded_summary = extract_stream_sink_guarded(
            &engine,
            Cursor::new(text.to_string()),
            options.with_on_error(ErrorPolicy::Quarantine),
            &mut legacy_guarded,
            Some(&mut legacy_quarantine),
        )
        .expect("legacy guarded streaming succeeds");
        assert_eq!(
            legacy_guarded_summary.records, guarded_summary.records,
            "{name}: legacy guarded records"
        );
        assert_eq!(
            legacy_guarded.into_writer(),
            jsonl_bytes,
            "{name}: legacy guarded JSON Lines bytes"
        );
        assert_eq!(
            legacy_quarantine.entries.len(),
            quarantine.entries.len(),
            "{name}: legacy quarantine entry count"
        );
    }
}

#[test]
fn flat_kv_records_with_noise() {
    let mut text = String::new();
    for i in 0..400 {
        text.push_str(&format!(
            "host=h{};cpu={};mem={}\n",
            i % 12,
            i % 100,
            (i * 7) % 512
        ));
        if i % 23 == 5 {
            text.push_str("--- rotating log file ---\n");
        }
    }
    assert_streaming_equivalence(
        "kv",
        &text,
        StreamOptions {
            head_bytes: 4 * 1024,
            window_bytes: 1024,
            ..StreamOptions::default()
        },
    );
}

#[test]
fn multiline_records_straddling_chunk_windows() {
    let mut text = String::new();
    for i in 0..300 {
        text.push_str(&format!("BEGIN {i}\nvalue={};status=ok\n", i * 3));
    }
    // A window far smaller than the head forces many records to straddle window edges.
    assert_streaming_equivalence(
        "multiline",
        &text,
        StreamOptions {
            head_bytes: 2 * 1024,
            window_bytes: 192,
            ..StreamOptions::default()
        },
    );
}

#[test]
fn array_records_synthesize_foreign_keys_across_windows() {
    // Variable-length comma lists: the child table's (id, parent_id, position) keys are
    // synthesized, and most rows are emitted from windows long past the first.
    let mut text = String::new();
    for i in 0..500u64 {
        let len = 2 + (i * 7 % 5) as usize;
        let vals: Vec<String> = (0..len)
            .map(|j| format!("{}", (i + j as u64 * 13) % 97))
            .collect();
        text.push_str(&vals.join(","));
        text.push('\n');
    }
    assert_streaming_equivalence(
        "arrays",
        &text,
        StreamOptions {
            head_bytes: 2 * 1024,
            window_bytes: 512,
            ..StreamOptions::default()
        },
    );
}

#[test]
fn interleaved_record_types_keep_per_type_tables_aligned() {
    fn mix(i: u64) -> u64 {
        let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 29;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^ (x >> 32)
    }
    let mut text = String::new();
    for i in 0..600u64 {
        if mix(i) % 100 < 40 {
            text.push_str(&format!("EVT|{}|login|user{}\n", 1000 + i, i % 7));
        } else {
            text.push_str(&format!("[{:02}:{:02}] srv{} ok\n", i % 24, i % 60, i % 4));
        }
    }
    assert_streaming_equivalence(
        "interleaved",
        &text,
        StreamOptions {
            head_bytes: 8 * 1024,
            window_bytes: 1024,
            ..StreamOptions::default()
        },
    );
}

#[test]
fn crlf_values_need_identical_rfc4180_quoting() {
    // `\r` is not a candidate formatting character, so on a CRLF stream every final field
    // value ends in a raw `\r` — both serializers must quote it (CSV) / escape it (JSON)
    // identically.
    fn mix(i: u64) -> u64 {
        let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 29;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^ (x >> 32)
    }
    let mut text = String::new();
    for i in 0..300u64 {
        text.push_str(&format!("id={i};msg=w{}\r\n", mix(i) % 9973));
    }
    let engine = Datamaran::with_defaults();
    let result = engine.extract(&text).unwrap();
    let csv: String = result
        .structures
        .iter()
        .flat_map(|s| s.relational.tables.iter())
        .map(table_to_csv)
        .collect();
    assert!(csv.contains("\r\""), "quoting path is exercised");
    assert_streaming_equivalence(
        "crlf",
        &text,
        StreamOptions {
            head_bytes: 2 * 1024,
            window_bytes: 512,
            ..StreamOptions::default()
        },
    );
}

#[test]
fn record_ending_exactly_at_window_edge_exports_once() {
    fn mix(i: u64) -> u64 {
        let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 29;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^ (x >> 32)
    }
    // Fixed-width, aperiodic records: every line is exactly 18 bytes, so a window target
    // that is a multiple of 18 makes every window end exactly at a record's final newline.
    let mut text = String::new();
    for i in 0..512u64 {
        text.push_str(&format!(
            "key={:04};val={:04}\n",
            mix(i) % 10_000,
            mix(i ^ 77) % 10_000
        ));
    }
    let line_len = 18;
    assert_eq!(text.len(), 512 * line_len);
    assert_streaming_equivalence(
        "window-edge",
        &text,
        StreamOptions {
            head_bytes: line_len * 64,
            window_bytes: line_len * 16,
            ..StreamOptions::default()
        },
    );
}

/// Parallel per-window extraction: with `extraction_threads > 1` the span matcher computes
/// each window's per-line match table on scoped workers and the sequential decision loop
/// replays it — the sink must receive byte-identical CSV and JSON Lines output, in the
/// same record order, for any thread count.  Windows are sized to clear the
/// minimum-chunk-lines threshold so the parallel path genuinely engages, and the fixture
/// mixes two-line records with noise so records straddle both chunk and window boundaries.
#[test]
fn parallel_window_extraction_is_byte_identical() {
    use datamaran::core::DatamaranConfig;

    fn mix(i: u64) -> u64 {
        let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 29;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^ (x >> 32)
    }
    let mut text = String::new();
    for i in 0..6000u64 {
        text.push_str(&format!(
            "REQ {}\nuser=u{};ms={}\n",
            i,
            mix(i) % 50,
            mix(i * 3) % 900
        ));
        if mix(i * 7).is_multiple_of(17) {
            text.push_str(&format!("## banner {} ##\n", mix(i) % 4096));
        }
    }
    let options = StreamOptions {
        head_bytes: 16 * 1024,
        // ~64 KiB windows hold thousands of lines — far past the 512-line minimum chunk,
        // so 2+ worker chunks per window.
        window_bytes: 64 * 1024,
        ..StreamOptions::default()
    };

    type RunOutput = (Vec<(String, Vec<u8>)>, Vec<u8>, usize, usize);
    let run = |threads: usize| -> RunOutput {
        let engine =
            Datamaran::new(DatamaranConfig::default().with_extraction_threads(threads)).unwrap();
        let mut sink = Tee(
            CsvSink::new(|_name: &str| Ok(Vec::<u8>::new())),
            JsonLinesSink::new(Vec::<u8>::new()),
        );
        let summary = StreamSession::new(&engine)
            .options(options)
            .run(Cursor::new(text.to_string()), &mut sink)
            .expect("streaming succeeds");
        let Tee(csv, jsonl) = sink;
        (
            csv.into_writers(),
            jsonl.into_writer(),
            summary.records,
            summary.noise_lines,
        )
    };

    let (base_csv, base_jsonl, base_records, base_noise) = run(1);
    assert!(base_records >= 6000, "records {base_records}");
    for threads in [2, 3, 7] {
        let (csv, jsonl, records, noise) = run(threads);
        assert_eq!(records, base_records, "{threads} threads: record count");
        assert_eq!(noise, base_noise, "{threads} threads: noise lines");
        assert_eq!(csv.len(), base_csv.len(), "{threads} threads: table count");
        for ((an, ab), (bn, bb)) in csv.iter().zip(&base_csv) {
            assert_eq!(an, bn, "{threads} threads: table name");
            assert_eq!(ab, bb, "{threads} threads: CSV bytes of {an}");
        }
        assert_eq!(jsonl, base_jsonl, "{threads} threads: JSON Lines bytes");
    }
}
