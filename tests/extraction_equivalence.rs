//! Differential properties for the extraction engine: the compiled instruction-table span
//! backend must be observationally identical to the legacy tree-walking parser — same
//! segmentation, same field cells, same instantiation trees, byte-identical relational
//! tables — on arbitrary input and for any worker-thread count; and the compiled
//! instruction table must round-trip (compile → decompile → same template) for every
//! template the generator emits.

use datamaran::core::{
    compile, decompile, generate, parse_dataset, parse_dataset_span, parse_dataset_span_parallel,
    reduce, to_denormalized, to_relational, CharSet, DatamaranConfig, Dataset, ParallelOptions,
    ParseResult, RecordMatch, RecordTemplate, StructureTemplate,
};
use datamaran::logsynth::{corpus, DatasetSpec};
use proptest::prelude::*;

fn flat(example: &str, charset: &str) -> StructureTemplate {
    let cs = CharSet::from_chars(charset.chars());
    StructureTemplate::from_record_template(&RecordTemplate::from_instantiated(example, &cs))
}

fn array(example: &str, charset: &str) -> StructureTemplate {
    let cs = CharSet::from_chars(charset.chars());
    reduce(&RecordTemplate::from_instantiated(example, &cs))
}

fn assert_same(a: &ParseResult, b: &ParseResult, label: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{label}: record count");
    assert_eq!(a.noise_lines, b.noise_lines, "{label}: noise lines");
    assert_eq!(a.record_bytes, b.record_bytes, "{label}: record bytes");
    assert_eq!(a.noise_bytes, b.noise_bytes, "{label}: noise bytes");
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.template_index, y.template_index, "{label}");
        assert_eq!(x.byte_span, y.byte_span, "{label}");
        assert_eq!(x.line_span, y.line_span, "{label}");
        assert_eq!(x.fields, y.fields, "{label}");
        assert_eq!(x.values, y.values, "{label}");
    }
    // Field-drift backstop: whatever fields ParseResult grows, full equality holds.
    assert_eq!(a, b, "{label}: full ParseResult equality");
}

/// Runs the tree walker and the span engine (sequential and sharded) over `text` with the
/// same templates and asserts byte-identical parses and relational tables.
fn check_extraction(text: &str, templates: &[StructureTemplate], label: &str) {
    let data = Dataset::new(text);
    let legacy = parse_dataset(&data, templates, 10);
    let span = parse_dataset_span(&data, templates, 10).to_parse_result(templates);
    assert_same(&legacy, &span, label);
    for threads in [2, 5] {
        let par = parse_dataset_span_parallel(
            &data,
            templates,
            10,
            ParallelOptions {
                threads,
                min_chunk_lines: 1,
            },
        )
        .to_parse_result(templates);
        assert_same(&legacy, &par, &format!("{label} ({threads} threads)"));
    }
    // The relational conversions of the two parses must also be byte-identical — this is
    // the `RelationalTable` acceptance criterion.
    for (idx, template) in templates.iter().enumerate() {
        let pick = |parse: &ParseResult| -> Vec<RecordMatch> {
            parse
                .records
                .iter()
                .filter(|r| r.template_index == idx)
                .cloned()
                .collect()
        };
        let (a, b) = (pick(&legacy), pick(&span));
        let a_refs: Vec<&RecordMatch> = a.iter().collect();
        let b_refs: Vec<&RecordMatch> = b.iter().collect();
        let source = data.shared_text();
        assert_eq!(
            to_relational(template, &source, &a_refs, "t"),
            to_relational(template, &source, &b_refs, "t"),
            "{label}: relational tables of template {idx}"
        );
        assert_eq!(
            to_denormalized(template, &source, &a_refs, "t"),
            to_denormalized(template, &source, &b_refs, "t"),
            "{label}: denormalized table of template {idx}"
        );
    }
}

#[test]
fn backends_agree_on_generated_corpora() {
    let families = [
        ("weblog", vec![corpus::web_access(0)], 0.02),
        ("http_blocks", vec![corpus::http_block(0)], 0.01),
        (
            "interleaved",
            vec![corpus::web_access(0), corpus::pipe_events(0)],
            0.03,
        ),
    ];
    for (i, (name, types, noise)) in families.into_iter().enumerate() {
        let spec = DatasetSpec::new(name, types, 250, 2000 + i as u64).with_noise(noise);
        let text = spec.generate().text;
        // Templates as the pipeline would discover them: top generation candidates reduced
        // from the sample, plus a couple of handcrafted shapes for template-order coverage.
        let config = DatamaranConfig::default();
        let mut templates: Vec<StructureTemplate> = generate(&Dataset::new(text.as_str()), &config)
            .candidates
            .into_iter()
            .take(4)
            .map(|c| c.template)
            .collect();
        templates.push(array("1,2,3\n", ",\n"));
        check_extraction(&text, &templates, name);
    }
}

#[test]
fn backends_agree_on_quoted_arrays_and_multiline_records() {
    let mut text = String::new();
    for i in 0..120 {
        match i % 4 {
            0 => text.push_str(&format!("a{i},\"x,y,z\",b\n")),
            1 => text.push_str(&format!("HDR {i}\nbody={i};done\n")),
            2 => text.push_str(&format!("{i},{},{}\n", i * 2, i % 7)),
            _ => text.push_str("!!! noise line !!!\n"),
        }
    }
    let templates = vec![
        array("a,\"x,y,z\",b\n", ",\"\n"),
        flat("HDR 1\nbody=2;done\n", " =;\n"),
        array("1,2,3\n", ",\n"),
    ];
    check_extraction(&text, &templates, "mixed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The compiled instruction table round-trips for every template the generator emits
    /// on random line datasets (the satellite acceptance property).
    #[test]
    fn compiled_table_round_trips_for_generated_templates(
        rows in prop::collection::vec(prop::collection::vec("[a-zA-Z0-9]{1,8}", 1..6), 5..30),
        sep in prop_oneof![Just(','), Just(';'), Just('|'), Just(':'), Just(' '), Just('=')],
    ) {
        let sep_s = sep.to_string();
        let mut text = String::new();
        for fields in &rows {
            text.push_str(&fields.join(&sep_s));
            text.push('\n');
        }
        let out = generate(&Dataset::new(text.as_str()), &DatamaranConfig::default());
        for cand in &out.candidates {
            let round = decompile(&compile(&cand.template));
            prop_assert_eq!(&round, &cand.template, "round trip of {}", cand.template);
        }
    }

    /// Both extraction backends produce identical parses on random row datasets with the
    /// generator's own candidate templates.
    #[test]
    fn backends_agree_on_random_row_datasets(
        rows in prop::collection::vec(prop::collection::vec("[a-zA-Z0-9]{1,8}", 1..6), 5..30),
        sep in prop_oneof![Just(','), Just(';'), Just('|')],
        noise in prop::collection::vec(any::<bool>(), 5..30),
    ) {
        let sep_s = sep.to_string();
        let mut text = String::new();
        for (i, fields) in rows.iter().enumerate() {
            text.push_str(&fields.join(&sep_s));
            text.push('\n');
            if noise.get(i).copied().unwrap_or(false) {
                text.push_str("## irregular interlude ##\n");
            }
        }
        let templates: Vec<StructureTemplate> =
            generate(&Dataset::new(text.as_str()), &DatamaranConfig::default())
                .candidates
                .into_iter()
                .take(3)
                .map(|c| c.template)
                .collect();
        if templates.is_empty() {
            return Ok(());
        }
        let data = Dataset::new(text.as_str());
        let legacy = parse_dataset(&data, &templates, 10);
        let span = parse_dataset_span(&data, &templates, 10).to_parse_result(&templates);
        prop_assert_eq!(legacy.records.len(), span.records.len());
        prop_assert_eq!(&legacy.noise_lines, &span.noise_lines);
        for (x, y) in legacy.records.iter().zip(&span.records) {
            prop_assert_eq!(x.byte_span, y.byte_span);
            prop_assert_eq!(&x.fields, &y.fields);
            prop_assert_eq!(&x.values, &y.values);
        }
    }
}
